//! The reduction from view side-effect to Red-Blue Set Cover (Claim 1 of
//! the paper) and from balanced deletion propagation to Positive-Negative
//! Partial Set Cover (Lemma 1).
//!
//! Construction (§IV.A): one **blue** element per view tuple to be deleted,
//! one **red** element per view tuple to be preserved (weights carried
//! over), and one **set** per candidate base tuple `t` containing exactly
//! the view tuples whose witness set contains `t`. Key-preservation makes
//! the witness sets — and hence the reduction — well defined and unique.
//! The mapping preserves feasibility and cost exactly in both directions,
//! which is what lets the Red-Blue algorithms' guarantees transfer.
//!
//! The image is assembled directly from the [`CompiledInstance`] CSR rows
//! — the blue row of set `t` is the IR's `hit_row(t)`, the red row its
//! `incidence_row(t)`, both already sorted and deduplicated — so no tuple
//! set is re-hashed ([`CoverSet::from_sorted`]).

use crate::ir::CompiledInstance;
use crate::solution::Solution;
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;
use delprop_setcover::{CoverSet, PnSet, PosNegInstance, RedBlueInstance};

/// A view-side-effect instance expressed as Red-Blue Set Cover.
#[derive(Debug, Clone)]
pub struct VseAsRedBlue {
    /// The Red-Blue image.
    pub instance: RedBlueInstance,
    /// Set `i` of the image corresponds to deleting `tuples[i]`.
    pub tuples: Vec<TupleId>,
    /// Blue element `b` is view tuple `blue_ids[b]` (∈ ΔV).
    pub blue_ids: Vec<ViewTupleId>,
    /// Red element `r` is view tuple `red_ids[r]` (preserved, vulnerable).
    pub red_ids: Vec<ViewTupleId>,
}

impl VseAsRedBlue {
    /// Map a Red-Blue selection back to a deletion solution.
    pub fn map_back(&self, selection: &[usize]) -> Solution {
        Solution::from_tuples(selection.iter().map(|&si| self.tuples[si]))
    }
}

/// Reduce a (standard, weighted) view-side-effect instance to Red-Blue Set
/// Cover over the candidate tuples.
pub fn to_redblue(ir: &CompiledInstance) -> VseAsRedBlue {
    let sets: Vec<CoverSet> = (0..ir.num_bases() as u32)
        .map(|b| {
            CoverSet::from_sorted(
                ir.incidence_row(b).iter().map(|&r| r as usize).collect(),
                ir.hit_row(b).iter().map(|&d| d as usize).collect(),
            )
        })
        .collect();
    let red_weights: Vec<f64> = (0..ir.num_vulnerable() as u32)
        .map(|r| ir.vulnerable_weight(r))
        .collect();
    VseAsRedBlue {
        instance: RedBlueInstance::with_weights(
            ir.num_vulnerable(),
            ir.num_demands(),
            red_weights,
            sets,
        ),
        tuples: ir.bases().to_vec(),
        blue_ids: ir.demands().to_vec(),
        red_ids: ir.vulnerable().to_vec(),
    }
}

/// A balanced instance expressed as Positive-Negative Partial Set Cover.
#[derive(Debug, Clone)]
pub struct BalancedAsPosNeg {
    /// The Pos-Neg image.
    pub instance: PosNegInstance,
    /// Set `i` corresponds to deleting `tuples[i]`.
    pub tuples: Vec<TupleId>,
    /// Positive element `p` is view tuple `pos_ids[p]` (∈ ΔV).
    pub pos_ids: Vec<ViewTupleId>,
    /// Negative element `n` is view tuple `neg_ids[n]` (preserved).
    pub neg_ids: Vec<ViewTupleId>,
}

impl BalancedAsPosNeg {
    /// Map a Pos-Neg selection back to a deletion solution.
    pub fn map_back(&self, selection: &[usize]) -> Solution {
        Solution::from_tuples(selection.iter().map(|&si| self.tuples[si]))
    }
}

/// Reduce a (weighted) balanced instance to Pos-Neg Partial Set Cover.
pub fn to_posneg(ir: &CompiledInstance) -> BalancedAsPosNeg {
    let sets: Vec<PnSet> = (0..ir.num_bases() as u32)
        .map(|b| {
            PnSet::from_sorted(
                ir.hit_row(b).iter().map(|&d| d as usize).collect(),
                ir.incidence_row(b).iter().map(|&r| r as usize).collect(),
            )
        })
        .collect();
    let pos_weights: Vec<f64> = (0..ir.num_demands() as u32)
        .map(|d| ir.demand_weight(d))
        .collect();
    let neg_weights: Vec<f64> = (0..ir.num_vulnerable() as u32)
        .map(|r| ir.vulnerable_weight(r))
        .collect();
    BalancedAsPosNeg {
        instance: PosNegInstance::with_weights(pos_weights, neg_weights, sets),
        tuples: ir.bases().to_vec(),
        pos_ids: ir.demands().to_vec(),
        neg_ids: ir.vulnerable().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use delprop_query::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema};

    fn fig1_problem() -> Problem {
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for t in [
            tup!["Joe", "TKDE"],
            tup!["John", "TKDE"],
            tup!["Tom", "TKDE"],
            tup!["John", "TODS"],
        ] {
            d.insert("T1", t).unwrap();
        }
        for t in [
            tup!["TKDE", "XML", 30],
            tup!["TKDE", "CUBE", 30],
            tup!["TODS", "XML", 30],
        ] {
            d.insert("T2", t).unwrap();
        }
        let q4 = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let mut p = Problem::new(d, vec![q4]).unwrap();
        p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        p
    }

    #[test]
    fn reduction_shape_matches_fig1() {
        let p = fig1_problem();
        let rb = to_redblue(p.compiled());
        // Candidates: T1(John,TKDE), T2(TKDE,XML,30) -> 2 sets.
        assert_eq!(rb.tuples.len(), 2);
        assert_eq!(rb.instance.num_blue(), 1);
        // Vulnerable preserved: Joe×XML, Tom×XML, John×CUBE -> 3 reds.
        assert_eq!(rb.instance.num_red(), 3);
        assert!(rb.instance.is_coverable());
    }

    #[test]
    fn costs_transfer_exactly() {
        let p = fig1_problem();
        let rb = to_redblue(p.compiled());
        for si in 0..rb.tuples.len() {
            let selection = vec![si];
            let sol = rb.map_back(&selection);
            assert!(rb.instance.is_feasible(&selection) == sol.is_feasible(&p));
            assert!(
                (rb.instance.cost(&selection) - sol.side_effect(&p)).abs() < 1e-9,
                "red cost must equal view side-effect"
            );
        }
    }

    #[test]
    fn balanced_costs_transfer_exactly() {
        let p = fig1_problem();
        let pn = to_posneg(p.compiled());
        // Empty selection: cost = weight of the single positive = 1.
        assert_eq!(pn.instance.cost(&[]), 1.0);
        assert_eq!(pn.map_back(&[]).balanced_cost(&p), 1.0);
        for si in 0..pn.tuples.len() {
            let sel = vec![si];
            let sol = pn.map_back(&sel);
            assert!(
                (pn.instance.cost(&sel) - sol.balanced_cost(&p)).abs() < 1e-9,
                "pos-neg cost must equal balanced cost"
            );
        }
    }

    #[test]
    fn weights_carried_into_image() {
        let mut p = fig1_problem();
        // Weight every preserved tuple 3.0.
        let ids: Vec<ViewTupleId> = p.preserved().map(|(id, _)| id).collect();
        for id in ids {
            p.set_weight(id, 3.0).unwrap();
        }
        let rb = to_redblue(p.compiled());
        for r in 0..rb.instance.num_red() {
            assert_eq!(rb.instance.red_weight(r), 3.0);
        }
    }

    #[test]
    fn no_deletions_gives_trivial_image() {
        let schema =
            Schema::from_relations([RelationSchema::new("T", 1, vec![0]).unwrap()]).unwrap();
        let mut d = Database::new(schema);
        d.insert("T", tup![1]).unwrap();
        let q = parse_query("Q(x) :- T(x)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let p = Problem::new(d, vec![q]).unwrap();
        let rb = to_redblue(p.compiled());
        assert_eq!(rb.instance.num_blue(), 0);
        assert!(rb.instance.is_feasible(&[]));
    }
}
