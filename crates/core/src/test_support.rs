//! Shared instance builders for this crate's unit tests.

use crate::problem::Problem;
use delprop_query::parse_query;
use delprop_relation::{tup, Database, RelationSchema, Schema, Tuple, Value};

/// The paper's Fig. 1 database with the given queries bound and a setup
/// hook to mark deletions / set weights.
pub(crate) fn fig1_problem(queries: &[(&str, &str)], setup: impl FnOnce(&mut Problem)) -> Problem {
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut d = Database::new(schema);
    for t in [
        tup!["Joe", "TKDE"],
        tup!["John", "TKDE"],
        tup!["Tom", "TKDE"],
        tup!["John", "TODS"],
    ] {
        d.insert("T1", t).unwrap();
    }
    for t in [
        tup!["TKDE", "XML", 30],
        tup!["TKDE", "CUBE", 30],
        tup!["TODS", "XML", 30],
    ] {
        d.insert("T2", t).unwrap();
    }
    let bound = queries
        .iter()
        .map(|(_, src)| parse_query(src).unwrap().bind(d.schema()).unwrap())
        .collect();
    let mut p = Problem::new(d, bound).unwrap();
    setup(&mut p);
    p
}

/// A binary-merging chain workload: one project-free chain query of
/// `atoms` atoms over `n` chains whose nodes coalesce like a binary tree
/// (`value at level j` = `i >> j`), so witness paths share suffixes and
/// deletions have real trade-offs. `blue` lists the chain indices whose
/// view tuples are marked for deletion.
pub(crate) fn chain_problem(n: usize, atoms: usize, blue: &[usize]) -> Problem {
    assert!(atoms >= 1);
    let schema = Schema::from_relations(
        (1..=atoms).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut d = Database::new(schema);
    for i in 0..n {
        for j in 1..=atoms {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let rel = format!("R{j}");
            let rid = d.schema().relation_id(&rel).unwrap();
            if d.find_by_key(rid, &[Value::int(a), Value::int(b)])
                .is_none()
            {
                d.insert(&rel, tup![a, b]).unwrap();
            }
        }
    }
    let head: Vec<String> = (0..=atoms).map(|j| format!("x{j}")).collect();
    let body: Vec<String> = (1..=atoms)
        .map(|j| format!("R{j}(x{}, x{})", j - 1, j))
        .collect();
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let q = parse_query(&src).unwrap().bind(d.schema()).unwrap();
    let mut p = Problem::new(d, vec![q]).unwrap();
    for &i in blue {
        let head: Tuple = (0..=atoms).map(|j| (i >> j) as i64).collect();
        p.mark_deleted(0, &head).unwrap();
    }
    p
}

/// A "broom" pivot workload: hub `R0(h)`, branches `R1(h, j)`, tips
/// `R2(j, j)`, with four queries `Q1 ⊂ Q2 ⊂ Q3 = Q3b` so that every view
/// tuple's witness set is a root-prefix path from the hub (a certified
/// pivot case) and the duplicated deepest view (`Q3b`) makes deletions of
/// blue `Q3` tuples cost at least 1. `blue` lists branch indices whose
/// `Q3` tuple is marked for deletion (OPT side-effect = `blue.len()`).
pub(crate) fn star_problem(branches: usize, blue: &[usize]) -> Problem {
    let schema = Schema::from_relations([
        RelationSchema::new("R0", 1, vec![0]).unwrap(),
        RelationSchema::new("R1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("R2", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut d = Database::new(schema);
    d.insert("R0", tup![0]).unwrap();
    for j in 0..branches {
        d.insert("R1", tup![0, j as i64 + 1]).unwrap();
        d.insert("R2", tup![j as i64 + 1, j as i64 + 1]).unwrap();
    }
    let sources = [
        "Q1(x0) :- R0(x0)",
        "Q2(x0, x1) :- R0(x0), R1(x0, x1)",
        "Q3(x0, x1, x2) :- R0(x0), R1(x0, x1), R2(x1, x2)",
        "Q3b(x0, x1, x2) :- R0(x0), R1(x0, x1), R2(x1, x2)",
    ];
    let bound = sources
        .iter()
        .map(|src| parse_query(src).unwrap().bind(d.schema()).unwrap())
        .collect();
    let mut p = Problem::new(d, bound).unwrap();
    for &j in blue {
        assert!(j < branches, "blue branch out of range");
        let b = j as i64 + 1;
        p.mark_deleted(2, &tup![0, b, b]).unwrap();
    }
    p
}

/// A staggered-window workload: `levels` chain relations `R1..R_levels`
/// holding `(i, i)` for `n` parallel chains, and one query per adjacent
/// relation pair `Q_j :- R_j, R_{j+1}`. Each chain's data dual graph is a
/// path `R1(i)–…–R_levels(i)` whose witness paths are staggered windows —
/// a forest case (§IV.B) that is **not** a pivot case for `levels ≥ 4`
/// (the windows share no common tuple). `blue` lists `(query, chain)`
/// pairs to mark for deletion.
pub(crate) fn staggered_problem(levels: usize, n: usize, blue: &[(usize, usize)]) -> Problem {
    assert!(levels >= 2);
    let schema = Schema::from_relations(
        (1..=levels).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut d = Database::new(schema);
    for j in 1..=levels {
        for i in 0..n {
            d.insert(&format!("R{j}"), tup![i as i64, i as i64])
                .unwrap();
        }
    }
    let bound = (1..levels)
        .map(|j| {
            let src = format!("Q{j}(a, b, c) :- R{j}(a, b), R{}(b, c)", j + 1);
            parse_query(&src).unwrap().bind(d.schema()).unwrap()
        })
        .collect();
    let mut p = Problem::new(d, bound).unwrap();
    for &(q, i) in blue {
        let v = i as i64;
        p.mark_deleted(q, &tup![v, v, v]).unwrap();
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn chain_problem_counts() {
        let p = chain_problem(8, 3, &[1, 4]);
        assert_eq!(p.views().views[0].len(), 8);
        assert_eq!(p.norm_delta(), 2);
        assert_eq!(p.l(), 4);
    }

    #[test]
    fn star_problem_opt_is_number_of_blues() {
        let p = star_problem(5, &[0, 3]);
        let out = exact::solve(p.compiled(), ExactConfig::default());
        assert_eq!(out.cost, 2.0, "each blue Q3 tuple costs its Q3b twin");
    }

    #[test]
    fn star_problem_view_counts() {
        let p = star_problem(3, &[]);
        // Q1: 1, Q2: 3, Q3: 3, Q3b: 3
        assert_eq!(p.norm_v(), 10);
    }
}
