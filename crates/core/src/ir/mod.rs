//! The compiled instance IR: one flat CSR incidence index shared by every
//! solver, the portfolio, and the set-cover reductions.
//!
//! Every algorithm of the paper (Algorithms 1–4, the LP, the reductions of
//! Claim 1 / Lemma 1) is defined over a single object: the bipartite
//! incidence between candidate base tuples and view tuples, plus
//! per-view-tuple weights (§IV, Table I). [`CompiledInstance`] is that
//! object materialized **once** per [`Problem`] — dense `u32` indices via
//! interning tables, CSR adjacency in both directions, flat `f64` weight
//! arrays — and cached behind the problem ([`Problem::compiled`]), so the
//! portfolio's whole fallback chain shares one compile.
//!
//! §IV notation → field mapping (see DESIGN.md for the full table):
//!
//! | paper (§IV / Table I)                  | field |
//! |----------------------------------------|-------|
//! | candidate tuples `𝒞 ⊆ D`               | [`bases`](CompiledInstance::bases) (interned, sorted) |
//! | `ΔV` (demands / blue elements)          | [`demands`](CompiledInstance::demands) |
//! | vulnerable `R ⊆ V∖ΔV` (red elements)    | [`vulnerable`](CompiledInstance::vulnerable) |
//! | witness sets `ws(r)`, `r ∈ ΔV`          | [`demand_row`](CompiledInstance::demand_row) (CSR demand→base) |
//! | sets `C_t = {s : t ∈ ws(s)}`            | [`incidence_row`](CompiledInstance::incidence_row) / [`hit_row`](CompiledInstance::hit_row) (CSR base→view) |
//! | `k_s = |ws(s)|`                         | [`vulnerable_k`](CompiledInstance::vulnerable_k) |
//! | weights `w_s`                           | [`vulnerable_weight`](CompiledInstance::vulnerable_weight) / [`demand_weight`](CompiledInstance::demand_weight) |
//!
//! The struct is plain old data — `Vec`s of `Copy` types, no interior
//! mutability, no maps — hence `Send + Sync`, the prerequisite for
//! sharding solves across threads later.

use crate::problem::Problem;
use crate::runtime::metrics;
use crate::solution::Solution;
use delprop_hypergraph::{find_pivot_structure, DataDualGraph, DualHypergraph};
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;
use delprop_setcover::kernel::words;
use delprop_setcover::{BitMatrix, BitSet};

/// Number of [`CompiledInstance::compile`] calls so far in this process
/// — the `ir.compiles` metric, kept for the `EX-IR` experiment's
/// one-compile-per-portfolio-solve assertion. Monotone, process-wide.
pub fn compile_count() -> u64 {
    metrics::IR_COMPILES.get()
}

/// The pivot-forest structure (§IV.E), flattened from
/// [`delprop_hypergraph::PivotStructure`] at compile time so `DPTreeVSE`
/// never rebuilds the data dual graph.
#[derive(Debug, Clone)]
pub struct PivotData {
    /// Endpoint vertex of each view tuple's witness path, parallel to
    /// [`CompiledInstance::view_tuples`].
    pub endpoints: Vec<u32>,
    /// The base tuple behind each forest vertex.
    pub vertex_tuple: Vec<TupleId>,
    /// CSR child lists of the forest rooted at the pivots.
    pub children_offsets: Vec<u32>,
    /// Concatenated child vertices.
    pub children: Vec<u32>,
    /// All vertices in BFS order (reverse = post-order).
    pub bfs_order: Vec<u32>,
    /// Root vertex per component (the pivots).
    pub roots: Vec<u32>,
}

impl PivotData {
    /// Children of forest vertex `v`.
    pub fn children_of(&self, v: usize) -> &[u32] {
        &self.children[self.children_offsets[v] as usize..self.children_offsets[v + 1] as usize]
    }

    /// Number of forest vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_tuple.len()
    }
}

/// A deletion-propagation instance compiled to flat dense-index form.
///
/// Built by [`CompiledInstance::compile`] (or lazily via
/// [`Problem::compiled`]); all ten solver entry points consume this
/// instead of re-deriving incidence maps from [`Problem`].
#[derive(Debug, Clone)]
pub struct CompiledInstance {
    // ---- interning tables ----
    /// Candidate base tuples `𝒞` (sorted ascending; dense base index).
    bases: Vec<TupleId>,
    /// `ΔV` in ascending `ViewTupleId` order (dense demand index).
    demands: Vec<ViewTupleId>,
    /// Vulnerable preserved view tuples, ascending (dense red index).
    vulnerable: Vec<ViewTupleId>,

    // ---- flat weight arrays ----
    demand_weights: Vec<f64>,
    vulnerable_weights: Vec<f64>,

    // ---- CSR adjacency (both directions) ----
    /// demand → witness bases (row order = witness-set order: sorted).
    demand_offsets: Vec<u32>,
    demand_witnesses: Vec<u32>,
    /// base → incident vulnerable view tuples (rows sorted ascending).
    incidence_offsets: Vec<u32>,
    incidence: Vec<u32>,
    /// base → demands whose witness set contains it (rows sorted).
    hit_offsets: Vec<u32>,
    hit_demands: Vec<u32>,
    /// vulnerable → candidate witnesses (`ws(s) ∩ 𝒞`).
    vulnerable_offsets: Vec<u32>,
    vulnerable_witnesses: Vec<u32>,

    // ---- packed bitset rows (kernel layer) ----
    /// demand → witness-base membership, one packed row per demand over
    /// the base universe. `witness_mask_row(d)` ∩ deletion mask ≠ ∅ is the
    /// branch-free form of "`mask` eliminates `d`".
    witness_masks: BitMatrix,
    /// vulnerable → candidate-witness membership, one packed row per red
    /// element over the base universe — the word-parallel side of
    /// coverage counting and side-effect evaluation.
    vulnerable_masks: BitMatrix,

    /// `k_s = |ws(s)|` per vulnerable tuple — the **full** witness count,
    /// including non-candidate witnesses (the dual capacities of
    /// Algorithm 1 divide by this).
    vulnerable_k: Vec<u32>,

    // ---- the whole-`V` layer (DP, demand ordering, evaluation) ----
    /// Every view tuple id, ascending (view-major materialization order).
    view_tuples: Vec<ViewTupleId>,
    /// Weight of every view tuple, parallel to `view_tuples`.
    all_weights: Vec<f64>,
    /// Whether each view tuple is in `ΔV`, parallel to `view_tuples`.
    deleted: Vec<bool>,
    /// CSR witness paths of every view tuple (layout order).
    path_offsets: Vec<u32>,
    paths: Vec<TupleId>,

    /// Demand indices in bottom-up processing order (decreasing witness-path
    /// top depth in the data-dual forest; identity when not a forest) —
    /// Algorithm 1's GVY-style order, precomputed.
    demand_order: Vec<u32>,

    /// Pivot-forest certification (§IV.E), when the structure exists.
    pivot: Option<PivotData>,
    /// Whether the query dual hypergraph's components are hypertrees
    /// (§IV.B forest case).
    forest_case: bool,

    // ---- scalars (Table I) ----
    l: usize,
    num_queries: usize,
    norm_v: usize,
    norm_delta: usize,
}

/// Flatten row lists into CSR (offsets, data).
fn to_csr(rows: Vec<Vec<u32>>) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = Vec::with_capacity(rows.len() + 1);
    offsets.push(0u32);
    let total: usize = rows.iter().map(Vec::len).sum();
    let mut data = Vec::with_capacity(total);
    for row in rows {
        data.extend(row);
        offsets.push(data.len() as u32);
    }
    (offsets, data)
}

impl CompiledInstance {
    /// Compile `problem` into the flat IR. One pass over the views plus
    /// one data-dual-graph construction (shared by the demand ordering and
    /// the pivot certification).
    pub fn compile(problem: &Problem) -> CompiledInstance {
        metrics::IR_COMPILES.inc();
        let compile_start = crate::runtime::now();

        let bases = problem.candidates();
        let base_of =
            |t: TupleId| -> Option<u32> { bases.binary_search(&t).ok().map(|b| b as u32) };

        let demands: Vec<ViewTupleId> = problem.deletions().iter().copied().collect();
        let vulnerable: Vec<ViewTupleId> = problem.vulnerable_preserved();

        let demand_weights: Vec<f64> = demands.iter().map(|&id| problem.weight(id)).collect();
        let vulnerable_weights: Vec<f64> =
            vulnerable.iter().map(|&id| problem.weight(id)).collect();

        // demand → bases, and its transpose base → demands.
        let mut demand_rows: Vec<Vec<u32>> = Vec::with_capacity(demands.len());
        let mut hit_rows: Vec<Vec<u32>> = vec![Vec::new(); bases.len()];
        for (di, &id) in demands.iter().enumerate() {
            let row: Vec<u32> = problem
                .witnesses(id)
                .iter()
                .map(|&t| base_of(t).expect("demand witnesses are candidates by definition"))
                .collect();
            for &b in &row {
                hit_rows[b as usize].push(di as u32);
            }
            demand_rows.push(row);
        }

        // vulnerable → candidate witnesses, and its transpose
        // base → vulnerable (the red incidence).
        let mut vulnerable_rows: Vec<Vec<u32>> = Vec::with_capacity(vulnerable.len());
        let mut incidence_rows: Vec<Vec<u32>> = vec![Vec::new(); bases.len()];
        let mut vulnerable_k: Vec<u32> = Vec::with_capacity(vulnerable.len());
        for (ri, &id) in vulnerable.iter().enumerate() {
            let ws = problem.witnesses(id);
            vulnerable_k.push(ws.len() as u32);
            let row: Vec<u32> = ws.iter().filter_map(|&t| base_of(t)).collect();
            for &b in &row {
                incidence_rows[b as usize].push(ri as u32);
            }
            vulnerable_rows.push(row);
        }

        // Whole-V layer: ids, weights, membership, witness paths.
        let mut view_tuples: Vec<ViewTupleId> = Vec::with_capacity(problem.norm_v());
        let mut all_weights: Vec<f64> = Vec::with_capacity(problem.norm_v());
        let mut deleted: Vec<bool> = Vec::with_capacity(problem.norm_v());
        let mut all_paths: Vec<Vec<TupleId>> = Vec::with_capacity(problem.norm_v());
        for (id, vt) in problem.views().iter() {
            view_tuples.push(id);
            all_weights.push(problem.weight(id));
            deleted.push(problem.is_deleted(id));
            all_paths.push(vt.unique_witnesses().to_vec());
        }

        // One data-dual graph serves both the bottom-up demand order
        // (Algorithm 1) and the pivot certification (Algorithm 4).
        let graph = DataDualGraph::new(&all_paths);
        let demand_order = bottom_up_order(&graph, problem, &demands);
        let pivot = find_pivot_structure(&graph).map(|p| {
            let children = p.forest.children();
            let (children_offsets, children) = to_csr(
                children
                    .into_iter()
                    .map(|row| row.into_iter().map(|v| v as u32).collect())
                    .collect(),
            );
            PivotData {
                endpoints: p.endpoints.iter().map(|&e| e as u32).collect(),
                vertex_tuple: (0..graph.num_vertices()).map(|v| graph.tuple(v)).collect(),
                children_offsets,
                children,
                bfs_order: p.forest.bfs_order.iter().map(|&v| v as u32).collect(),
                roots: p.forest.roots.iter().map(|&v| v as u32).collect(),
            }
        });

        let dual = DualHypergraph::new(
            &problem
                .queries()
                .iter()
                .map(|q| q.atoms.iter().map(|a| a.relation).collect())
                .collect::<Vec<_>>(),
        );
        let forest_case = dual.is_forest_case();

        // Packed bitset rows share the dense base universe with the CSR
        // rows; solvers intersect them against deletion masks word by word.
        let witness_masks = BitMatrix::from_rows(
            demands.len(),
            bases.len(),
            demand_rows
                .iter()
                .map(|row| row.iter().map(|&b| b as usize)),
        );
        let vulnerable_masks = BitMatrix::from_rows(
            vulnerable.len(),
            bases.len(),
            vulnerable_rows
                .iter()
                .map(|row| row.iter().map(|&b| b as usize)),
        );

        let (demand_offsets, demand_witnesses) = to_csr(demand_rows);
        let (hit_offsets, hit_demands) = to_csr(hit_rows);
        let (vulnerable_offsets, vulnerable_witnesses) = to_csr(vulnerable_rows);
        let (incidence_offsets, incidence) = to_csr(incidence_rows);
        let (path_offsets, paths) = {
            let mut offsets = Vec::with_capacity(all_paths.len() + 1);
            offsets.push(0u32);
            let mut data = Vec::new();
            for p in &all_paths {
                data.extend_from_slice(p);
                offsets.push(data.len() as u32);
            }
            (offsets, data)
        };

        metrics::IR_COMPILE_MICROS.observe(compile_start.elapsed().as_micros() as u64);
        CompiledInstance {
            l: problem.l(),
            num_queries: problem.queries().len(),
            norm_v: problem.norm_v(),
            norm_delta: problem.norm_delta(),
            bases,
            demands,
            vulnerable,
            demand_weights,
            vulnerable_weights,
            demand_offsets,
            demand_witnesses,
            incidence_offsets,
            incidence,
            hit_offsets,
            hit_demands,
            vulnerable_offsets,
            vulnerable_witnesses,
            witness_masks,
            vulnerable_masks,
            vulnerable_k,
            view_tuples,
            all_weights,
            deleted,
            path_offsets,
            paths,
            demand_order,
            pivot,
            forest_case,
        }
    }

    // ---- interning ----

    /// Candidate base tuples `𝒞`, sorted ascending.
    pub fn bases(&self) -> &[TupleId] {
        &self.bases
    }

    /// Number of candidate base tuples.
    pub fn num_bases(&self) -> usize {
        self.bases.len()
    }

    /// The base tuple behind dense index `b`.
    pub fn base(&self, b: u32) -> TupleId {
        self.bases[b as usize]
    }

    /// Dense index of a base tuple, if it is a candidate.
    pub fn base_index(&self, t: TupleId) -> Option<u32> {
        self.bases.binary_search(&t).ok().map(|b| b as u32)
    }

    /// `ΔV`, ascending.
    pub fn demands(&self) -> &[ViewTupleId] {
        &self.demands
    }

    /// Number of demands `‖ΔV‖`.
    pub fn num_demands(&self) -> usize {
        self.demands.len()
    }

    /// The view tuple behind dense demand index `d`.
    pub fn demand(&self, d: u32) -> ViewTupleId {
        self.demands[d as usize]
    }

    /// Vulnerable preserved view tuples, ascending.
    pub fn vulnerable(&self) -> &[ViewTupleId] {
        &self.vulnerable
    }

    /// Number of vulnerable preserved view tuples.
    pub fn num_vulnerable(&self) -> usize {
        self.vulnerable.len()
    }

    /// The view tuple behind dense red index `r`.
    pub fn vulnerable_id(&self, r: u32) -> ViewTupleId {
        self.vulnerable[r as usize]
    }

    // ---- weights ----

    /// Weight of demand `d` (balanced objective's prize).
    pub fn demand_weight(&self, d: u32) -> f64 {
        self.demand_weights[d as usize]
    }

    /// Weight of vulnerable tuple `r` (side-effect contribution).
    pub fn vulnerable_weight(&self, r: u32) -> f64 {
        self.vulnerable_weights[r as usize]
    }

    // ---- CSR rows ----

    /// Witness bases of demand `d` (sorted dense base indices).
    pub fn demand_row(&self, d: u32) -> &[u32] {
        let (lo, hi) = (
            self.demand_offsets[d as usize],
            self.demand_offsets[d as usize + 1],
        );
        &self.demand_witnesses[lo as usize..hi as usize]
    }

    /// Vulnerable view tuples incident to base `b` (sorted dense red
    /// indices). Its length is the **red degree** of `b` (Algorithm 2's
    /// threshold quantity).
    pub fn incidence_row(&self, b: u32) -> &[u32] {
        let (lo, hi) = (
            self.incidence_offsets[b as usize],
            self.incidence_offsets[b as usize + 1],
        );
        &self.incidence[lo as usize..hi as usize]
    }

    /// Demands whose witness set contains base `b` (sorted dense demand
    /// indices) — the blue rows of the Red-Blue image.
    pub fn hit_row(&self, b: u32) -> &[u32] {
        let (lo, hi) = (
            self.hit_offsets[b as usize],
            self.hit_offsets[b as usize + 1],
        );
        &self.hit_demands[lo as usize..hi as usize]
    }

    /// Candidate witnesses of vulnerable tuple `r` (`ws(s) ∩ 𝒞`).
    pub fn vulnerable_row(&self, r: u32) -> &[u32] {
        let (lo, hi) = (
            self.vulnerable_offsets[r as usize],
            self.vulnerable_offsets[r as usize + 1],
        );
        &self.vulnerable_witnesses[lo as usize..hi as usize]
    }

    /// `k_s`: full witness-set size of vulnerable tuple `r` (including
    /// non-candidate witnesses).
    pub fn vulnerable_k(&self, r: u32) -> u32 {
        self.vulnerable_k[r as usize]
    }

    /// Red degree of base `b`: number of vulnerable view tuples whose
    /// witness set contains it.
    pub fn red_degree(&self, b: u32) -> usize {
        self.incidence_row(b).len()
    }

    // ---- whole-V layer ----

    /// All view tuple ids, ascending.
    pub fn view_tuples(&self) -> &[ViewTupleId] {
        &self.view_tuples
    }

    /// Weight of the `i`-th view tuple.
    pub fn view_weight(&self, i: usize) -> f64 {
        self.all_weights[i]
    }

    /// Whether the `i`-th view tuple is in `ΔV`.
    pub fn view_deleted(&self, i: usize) -> bool {
        self.deleted[i]
    }

    /// Witness path of the `i`-th view tuple (layout order).
    pub fn path(&self, i: usize) -> &[TupleId] {
        &self.paths[self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize]
    }

    /// Demand indices in bottom-up (decreasing top-depth) order.
    pub fn demand_order(&self) -> &[u32] {
        &self.demand_order
    }

    /// The pivot-forest structure, when certified (§IV.E).
    pub fn pivot(&self) -> Option<&PivotData> {
        self.pivot.as_ref()
    }

    /// Whether the instance is a §IV.B forest case.
    pub fn forest_case(&self) -> bool {
        self.forest_case
    }

    // ---- scalars ----

    /// `l = max arity(Q)`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of queries `|Q|`.
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// `‖V‖`.
    pub fn norm_v(&self) -> usize {
        self.norm_v
    }

    /// `‖ΔV‖`.
    pub fn norm_delta(&self) -> usize {
        self.norm_delta
    }

    // ---- evaluation ----

    /// Dense deletion mask over the candidate bases for `sol`
    /// (non-candidate deletions have no entry: they cannot cut demands,
    /// and candidate-restricted solvers never produce them).
    pub fn base_mask(&self, sol: &Solution) -> Vec<bool> {
        let mut mask = vec![false; self.bases.len()];
        for &t in &sol.deleted {
            if let Some(b) = self.base_index(t) {
                mask[b as usize] = true;
            }
        }
        mask
    }

    /// Whether `mask` (over dense base indices) eliminates demand `d`.
    pub fn eliminates(&self, mask: &[bool], d: u32) -> bool {
        self.demand_row(d).iter().any(|&b| mask[b as usize])
    }

    /// Whether `mask` eliminates every demand.
    pub fn is_feasible_mask(&self, mask: &[bool]) -> bool {
        (0..self.demands.len() as u32).all(|d| self.eliminates(mask, d))
    }

    /// Side-effect of `mask`: total weight of vulnerable tuples losing a
    /// witness. Exact for candidate-restricted solutions (the only kind
    /// any solver emits), since non-candidate deletions damage only
    /// non-vulnerable tuples.
    pub fn side_effect_mask(&self, mask: &[bool]) -> f64 {
        (0..self.vulnerable.len() as u32)
            .filter(|&r| self.vulnerable_row(r).iter().any(|&b| mask[b as usize]))
            .map(|r| self.vulnerable_weight(r))
            .sum::<f64>()
            + 0.0
    }

    /// Balanced cost of `mask`: prizes of missed demands plus side-effect.
    pub fn balanced_cost_mask(&self, mask: &[bool]) -> f64 {
        let missed: f64 = (0..self.demands.len() as u32)
            .filter(|&d| !self.eliminates(mask, d))
            .map(|d| self.demand_weight(d))
            .sum();
        missed + self.side_effect_mask(mask)
    }

    // ---- packed evaluation (kernel layer) ----

    /// Packed witness row of demand `d` over the base universe — the
    /// bitset twin of [`demand_row`](Self::demand_row).
    pub fn witness_mask_row(&self, d: u32) -> &[u64] {
        self.witness_masks.row(d as usize)
    }

    /// Packed candidate-witness row of vulnerable tuple `r` — the bitset
    /// twin of [`vulnerable_row`](Self::vulnerable_row).
    pub fn vulnerable_mask_row(&self, r: u32) -> &[u64] {
        self.vulnerable_masks.row(r as usize)
    }

    /// Words per packed base row (`num_bases.div_ceil(64)`); every
    /// deletion [`BitSet`] over the base universe has this many words.
    pub fn base_words(&self) -> usize {
        self.witness_masks.words_per_row()
    }

    /// Packed deletion mask over the candidate bases for `sol` (the bitset
    /// twin of [`base_mask`](Self::base_mask); non-candidate deletions
    /// have no bit).
    pub fn base_bits(&self, sol: &Solution) -> BitSet {
        let mut bits = BitSet::new(self.bases.len());
        for &t in &sol.deleted {
            if let Some(b) = self.base_index(t) {
                bits.insert(b as usize);
            }
        }
        bits
    }

    /// Packed base-index set for the given tuples (non-candidates are
    /// ignored, exactly as in [`base_bits`](Self::base_bits)).
    pub fn tuple_bits(&self, tuples: impl IntoIterator<Item = TupleId>) -> BitSet {
        let mut bits = BitSet::new(self.bases.len());
        for t in tuples {
            if let Some(b) = self.base_index(t) {
                bits.insert(b as usize);
            }
        }
        bits
    }

    /// Whether the packed deletion mask eliminates demand `d` — one
    /// branch-free AND sweep over the packed witness row.
    pub fn eliminates_bits(&self, deleted: &BitSet, d: u32) -> bool {
        words::intersects(self.witness_mask_row(d), deleted.words())
    }

    /// Whether the packed deletion mask eliminates every demand.
    pub fn is_feasible_bits(&self, deleted: &BitSet) -> bool {
        (0..self.demands.len() as u32).all(|d| self.eliminates_bits(deleted, d))
    }

    /// Side-effect of a packed deletion mask. Identical sum order (and
    /// therefore bit-identical result) to
    /// [`side_effect_mask`](Self::side_effect_mask): vulnerable indices
    /// ascending.
    pub fn side_effect_bits(&self, deleted: &BitSet) -> f64 {
        (0..self.vulnerable.len() as u32)
            .filter(|&r| words::intersects(self.vulnerable_mask_row(r), deleted.words()))
            .map(|r| self.vulnerable_weight(r))
            .sum()
    }

    /// Balanced cost of a packed deletion mask — bit-identical to
    /// [`balanced_cost_mask`](Self::balanced_cost_mask) on the same mask.
    pub fn balanced_cost_bits(&self, deleted: &BitSet) -> f64 {
        let missed: f64 = (0..self.demands.len() as u32)
            .filter(|&d| !self.eliminates_bits(deleted, d))
            .map(|d| self.demand_weight(d))
            .sum();
        missed + self.side_effect_bits(deleted)
    }

    /// [`Solution`]-level wrappers over the packed evaluators.
    pub fn side_effect_of(&self, sol: &Solution) -> f64 {
        self.side_effect_bits(&self.base_bits(sol))
    }

    /// Balanced cost of a candidate-restricted solution.
    pub fn balanced_cost_of(&self, sol: &Solution) -> f64 {
        self.balanced_cost_bits(&self.base_bits(sol))
    }

    /// Whether `sol` eliminates every demand (exact for any solution:
    /// demand witnesses are candidates by definition).
    pub fn is_feasible_of(&self, sol: &Solution) -> bool {
        self.is_feasible_bits(&self.base_bits(sol))
    }
}

/// Demand indices sorted bottom-up: decreasing depth of each witness
/// path's shallowest vertex (its top / LCA) in the data-dual forest, ties
/// and the non-forest fallback in ascending `ViewTupleId` order.
fn bottom_up_order(graph: &DataDualGraph, problem: &Problem, demands: &[ViewTupleId]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..demands.len() as u32).collect();
    if let Some(forest) = graph.rooted(None) {
        let top_depth = |id: ViewTupleId| -> usize {
            problem
                .witnesses(id)
                .iter()
                .filter_map(|&t| graph.vertex(t))
                .map(|v| forest.depth[v])
                .min()
                .unwrap_or(0)
        };
        order.sort_by_key(|&di| {
            let id = demands[di as usize];
            (std::cmp::Reverse(top_depth(id)), id)
        });
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;

    fn fig1() -> Problem {
        fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        })
    }

    #[test]
    fn fig1_shapes() {
        let p = fig1();
        let ir = CompiledInstance::compile(&p);
        assert_eq!(ir.num_bases(), 2, "T1(John,TKDE) and T2(TKDE,XML,30)");
        assert_eq!(ir.num_demands(), 1);
        assert_eq!(ir.num_vulnerable(), 3);
        assert_eq!(ir.norm_v(), 7);
        assert_eq!(ir.l(), 3);
        // The single demand's witnesses are both bases.
        assert_eq!(ir.demand_row(0), &[0, 1]);
        // Red degrees: T1 side damages 1 (John/CUBE), T2 side 2 (Joe, Tom).
        let mut degs: Vec<usize> = (0..2).map(|b| ir.red_degree(b)).collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![1, 2]);
    }

    #[test]
    fn csr_rows_are_sorted_and_consistent() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        for d in 0..ir.num_demands() as u32 {
            let row = ir.demand_row(d);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            // Transpose consistency: every witness's hit row names d.
            for &b in row {
                assert!(ir.hit_row(b).contains(&d));
            }
        }
        for r in 0..ir.num_vulnerable() as u32 {
            for &b in ir.vulnerable_row(r) {
                assert!(ir.incidence_row(b).contains(&r));
            }
            assert!(ir.vulnerable_k(r) as usize >= ir.vulnerable_row(r).len());
        }
    }

    #[test]
    fn evaluation_matches_ground_truth() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        // Evaluate every single-candidate deletion both ways.
        for &t in ir.bases() {
            let sol = Solution::from_tuples([t]);
            assert_eq!(ir.is_feasible_of(&sol), sol.is_feasible(&p));
            assert!((ir.side_effect_of(&sol) - sol.side_effect(&p)).abs() < 1e-12);
            assert!((ir.balanced_cost_of(&sol) - sol.balanced_cost(&p)).abs() < 1e-12);
        }
        // And the full candidate set (always feasible).
        let all = Solution::from_tuples(ir.bases().iter().copied());
        assert!(ir.is_feasible_of(&all));
        assert!((ir.side_effect_of(&all) - all.side_effect(&p)).abs() < 1e-12);
    }

    #[test]
    fn packed_rows_agree_with_csr() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        assert_eq!(ir.base_words(), ir.num_bases().div_ceil(64));
        for d in 0..ir.num_demands() as u32 {
            let from_bits: Vec<u32> = words::iter_ones(ir.witness_mask_row(d))
                .map(|b| b as u32)
                .collect();
            assert_eq!(from_bits, ir.demand_row(d), "demand {d} packed row");
        }
        for r in 0..ir.num_vulnerable() as u32 {
            let from_bits: Vec<u32> = words::iter_ones(ir.vulnerable_mask_row(r))
                .map(|b| b as u32)
                .collect();
            assert_eq!(from_bits, ir.vulnerable_row(r), "vulnerable {r} packed row");
        }
    }

    #[test]
    fn packed_evaluators_match_mask_evaluators() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        // Pseudo-random subsets of the candidate bases, evaluated both ways.
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..32 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mask: Vec<bool> = (0..ir.num_bases())
                .map(|b| seed >> (b % 64) & 1 == 1)
                .collect();
            let bits = BitSet::from_indices(
                ir.num_bases(),
                mask.iter().enumerate().filter(|(_, &m)| m).map(|(b, _)| b),
            );
            assert_eq!(ir.is_feasible_bits(&bits), ir.is_feasible_mask(&mask));
            assert_eq!(ir.side_effect_bits(&bits), ir.side_effect_mask(&mask));
            assert_eq!(ir.balanced_cost_bits(&bits), ir.balanced_cost_mask(&mask));
            for d in 0..ir.num_demands() as u32 {
                assert_eq!(ir.eliminates_bits(&bits, d), ir.eliminates(&mask, d));
            }
        }
    }

    #[test]
    fn base_bits_matches_base_mask() {
        let p = fig1();
        let ir = CompiledInstance::compile(&p);
        let sol = Solution::from_tuples([ir.base(0)]);
        let mask = ir.base_mask(&sol);
        let bits = ir.base_bits(&sol);
        for (b, &m) in mask.iter().enumerate() {
            assert_eq!(bits.contains(b), m);
        }
        assert_eq!(bits.capacity(), ir.num_bases());
    }

    #[test]
    fn pivot_structure_compiled_for_star() {
        let p = star_problem(6, &[1, 3]);
        let ir = CompiledInstance::compile(&p);
        let pivot = ir.pivot().expect("stars are pivot forests");
        assert_eq!(pivot.endpoints.len(), ir.view_tuples().len());
        assert!(!pivot.roots.is_empty());
        // Children CSR covers every vertex.
        assert_eq!(pivot.children_offsets.len(), pivot.num_vertices() + 1);
    }

    #[test]
    fn fig1_is_not_a_pivot_forest() {
        let ir = CompiledInstance::compile(&fig1());
        assert!(ir.pivot().is_none());
    }

    #[test]
    fn demand_order_is_a_permutation() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        let mut seen = ir.demand_order().to_vec();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..ir.num_demands() as u32).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn compile_counter_increments() {
        let before = compile_count();
        let _ = CompiledInstance::compile(&fig1());
        assert!(compile_count() > before);
    }

    #[test]
    fn compiled_instance_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledInstance>();
    }
}
