//! The compiled instance IR: one flat CSR incidence index shared by every
//! solver, the portfolio, and the set-cover reductions.
//!
//! Every algorithm of the paper (Algorithms 1–4, the LP, the reductions of
//! Claim 1 / Lemma 1) is defined over a single object: the bipartite
//! incidence between candidate base tuples and view tuples, plus
//! per-view-tuple weights (§IV, Table I). [`CompiledInstance`] is that
//! object materialized **once** per [`Problem`] — dense `u32` indices via
//! interning tables, CSR adjacency in both directions, flat `f64` weight
//! arrays — and cached behind the problem ([`Problem::compiled`]), so the
//! portfolio's whole fallback chain shares one compile.
//!
//! §IV notation → field mapping (see DESIGN.md for the full table):
//!
//! | paper (§IV / Table I)                  | field |
//! |----------------------------------------|-------|
//! | candidate tuples `𝒞 ⊆ D`               | [`bases`](CompiledInstance::bases) (interned, sorted) |
//! | `ΔV` (demands / blue elements)          | [`demands`](CompiledInstance::demands) |
//! | vulnerable `R ⊆ V∖ΔV` (red elements)    | [`vulnerable`](CompiledInstance::vulnerable) |
//! | witness sets `ws(r)`, `r ∈ ΔV`          | [`demand_row`](CompiledInstance::demand_row) (CSR demand→base) |
//! | sets `C_t = {s : t ∈ ws(s)}`            | [`incidence_row`](CompiledInstance::incidence_row) / [`hit_row`](CompiledInstance::hit_row) (CSR base→view) |
//! | `k_s = |ws(s)|`                         | [`vulnerable_k`](CompiledInstance::vulnerable_k) |
//! | weights `w_s`                           | [`vulnerable_weight`](CompiledInstance::vulnerable_weight) / [`demand_weight`](CompiledInstance::demand_weight) |
//!
//! The struct is plain old data — `Vec`s of `Copy` types, no interior
//! mutability, no maps — hence `Send + Sync`, the prerequisite for
//! sharding solves across threads later.

use crate::problem::Problem;
use crate::runtime::metrics;
use crate::solution::Solution;
use delprop_hypergraph::{find_pivot_structure, DataDualGraph, DualHypergraph};
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;
use delprop_setcover::kernel::words;
use delprop_setcover::{BitMatrix, BitSet};
use std::sync::Arc;

/// Number of [`CompiledInstance::compile`] calls so far in this process
/// — the `ir.compiles` metric, kept for the `EX-IR` experiment's
/// one-compile-per-portfolio-solve assertion. Monotone, process-wide.
pub fn compile_count() -> u64 {
    metrics::IR_COMPILES.get()
}

/// Number of incremental IR assemblies (engine projections) so far in
/// this process — the `ir.patches` metric. An assembly reuses a
/// [`StaticLayer`] and costs `O(active)`, a compile costs `O(‖V‖)` plus
/// a data-dual-graph construction.
pub fn patch_count() -> u64 {
    metrics::IR_PATCHES.get()
}

/// The pivot-forest structure (§IV.E), flattened from
/// [`delprop_hypergraph::PivotStructure`] at compile time so `DPTreeVSE`
/// never rebuilds the data dual graph.
#[derive(Debug, Clone)]
pub struct PivotData {
    /// Endpoint vertex of each view tuple's witness path, parallel to
    /// [`CompiledInstance::view_tuples`].
    pub endpoints: Vec<u32>,
    /// The base tuple behind each forest vertex.
    pub vertex_tuple: Vec<TupleId>,
    /// CSR child lists of the forest rooted at the pivots.
    pub children_offsets: Vec<u32>,
    /// Concatenated child vertices.
    pub children: Vec<u32>,
    /// All vertices in BFS order (reverse = post-order).
    pub bfs_order: Vec<u32>,
    /// Root vertex per component (the pivots).
    pub roots: Vec<u32>,
}

impl PivotData {
    /// Children of forest vertex `v`.
    pub fn children_of(&self, v: usize) -> &[u32] {
        &self.children[self.children_offsets[v] as usize..self.children_offsets[v + 1] as usize]
    }

    /// Number of forest vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_tuple.len()
    }
}

/// The ΔV-independent layer of the IR: everything derivable from the
/// database, the queries, and the materialized views alone — witness
/// paths, weights, the data-dual forest depths, the pivot certification,
/// and the query-dual forest flag. None of it mentions the deletion set,
/// so a long-lived [`crate::engine::Engine`] builds it **once** and every
/// incremental projection shares it by `Arc`; only the `O(active)` parts
/// (`ActiveParts`) are rebuilt per ΔV batch.
#[derive(Debug)]
pub struct StaticLayer {
    /// Every view tuple id, ascending (view-major materialization order).
    pub(crate) view_tuples: Vec<ViewTupleId>,
    /// Weight of every view tuple, parallel to `view_tuples`. Captured at
    /// build time: weight mutations invalidate the layer.
    pub(crate) all_weights: Vec<f64>,
    /// CSR witness paths of every view tuple (layout order).
    pub(crate) path_offsets: Vec<u32>,
    pub(crate) paths: Vec<TupleId>,
    /// Depth of each view tuple's witness-path top (its shallowest
    /// vertex) in the rooted data-dual forest, parallel to
    /// `view_tuples`; `None` when the data dual graph is not a forest
    /// (the demand order then falls back to ascending id order).
    pub(crate) top_depth: Option<Vec<u32>>,
    /// Pivot-forest certification (§IV.E), when the structure exists.
    pub(crate) pivot: Option<PivotData>,
    /// Whether the query dual hypergraph's components are hypertrees.
    pub(crate) forest_case: bool,
    pub(crate) l: usize,
    pub(crate) num_queries: usize,
    pub(crate) norm_v: usize,
}

impl StaticLayer {
    /// Build the layer: one pass over the views plus one data-dual-graph
    /// construction (shared by the forest depths and the pivot
    /// certification).
    pub(crate) fn build(problem: &Problem) -> StaticLayer {
        let norm_v = problem.norm_v();
        let mut view_tuples: Vec<ViewTupleId> = Vec::with_capacity(norm_v);
        let mut all_weights: Vec<f64> = Vec::with_capacity(norm_v);
        let mut all_paths: Vec<Vec<TupleId>> = Vec::with_capacity(norm_v);
        for (id, vt) in problem.views().iter() {
            view_tuples.push(id);
            all_weights.push(problem.weight(id));
            all_paths.push(vt.unique_witnesses().to_vec());
        }

        // One data-dual graph serves both the bottom-up demand order
        // (Algorithm 1) and the pivot certification (Algorithm 4).
        let graph = DataDualGraph::new(&all_paths);
        let top_depth = graph.rooted(None).map(|forest| {
            all_paths
                .iter()
                .map(|p| {
                    p.iter()
                        .filter_map(|&t| graph.vertex(t))
                        .map(|v| forest.depth[v])
                        .min()
                        .unwrap_or(0) as u32
                })
                .collect()
        });
        let pivot = find_pivot_structure(&graph).map(|p| {
            let children = p.forest.children();
            let (children_offsets, children) = to_csr(
                children
                    .into_iter()
                    .map(|row| row.into_iter().map(|v| v as u32).collect())
                    .collect(),
            );
            PivotData {
                endpoints: p.endpoints.iter().map(|&e| e as u32).collect(),
                vertex_tuple: (0..graph.num_vertices()).map(|v| graph.tuple(v)).collect(),
                children_offsets,
                children,
                bfs_order: p.forest.bfs_order.iter().map(|&v| v as u32).collect(),
                roots: p.forest.roots.iter().map(|&v| v as u32).collect(),
            }
        });

        let dual = DualHypergraph::new(
            &problem
                .queries()
                .iter()
                .map(|q| q.atoms.iter().map(|a| a.relation).collect())
                .collect::<Vec<_>>(),
        );
        let forest_case = dual.is_forest_case();

        let (path_offsets, paths) = {
            let mut offsets = Vec::with_capacity(all_paths.len() + 1);
            offsets.push(0u32);
            let mut data = Vec::new();
            for p in &all_paths {
                data.extend_from_slice(p);
                offsets.push(data.len() as u32);
            }
            (offsets, data)
        };

        StaticLayer {
            view_tuples,
            all_weights,
            path_offsets,
            paths,
            top_depth,
            pivot,
            forest_case,
            l: problem.l(),
            num_queries: problem.queries().len(),
            norm_v,
        }
    }

    /// Dense layout index of a view tuple id (`view_tuples` is sorted:
    /// `ViewTupleId`'s lexicographic order equals materialization order).
    pub(crate) fn dense(&self, id: ViewTupleId) -> usize {
        self.view_tuples
            .binary_search(&id)
            .expect("view tuple id within the materialized layout")
    }

    /// Witness path of the `i`-th view tuple (layout order).
    pub(crate) fn path_of(&self, i: usize) -> &[TupleId] {
        &self.paths[self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize]
    }

    /// `‖V‖`.
    pub(crate) fn norm_v(&self) -> usize {
        self.norm_v
    }
}

/// The ΔV-dependent inputs of an IR assembly: the active subproblem a
/// [`StaticLayer`] is projected onto. All four members are canonical —
/// sorted ascending, exactly what a cold [`CompiledInstance::compile`]
/// of the same problem state would derive — so cold and incremental
/// assemblies are byte-identical by construction.
pub(crate) struct ActiveParts {
    /// Candidate base tuples `𝒞`, sorted ascending.
    pub(crate) bases: Vec<TupleId>,
    /// `ΔV` in ascending `ViewTupleId` order.
    pub(crate) demands: Vec<ViewTupleId>,
    /// Vulnerable preserved view tuples, ascending.
    pub(crate) vulnerable: Vec<ViewTupleId>,
    /// Per-view-tuple ΔV membership, parallel to the layout.
    pub(crate) deleted: Vec<bool>,
}

/// A deletion-propagation instance compiled to flat dense-index form.
///
/// Built by [`CompiledInstance::compile`] (or lazily via
/// [`Problem::compiled`]); all ten solver entry points consume this
/// instead of re-deriving incidence maps from [`Problem`].
#[derive(Debug, Clone)]
pub struct CompiledInstance {
    // ---- interning tables ----
    /// Candidate base tuples `𝒞` (sorted ascending; dense base index).
    bases: Vec<TupleId>,
    /// `ΔV` in ascending `ViewTupleId` order (dense demand index).
    demands: Vec<ViewTupleId>,
    /// Vulnerable preserved view tuples, ascending (dense red index).
    vulnerable: Vec<ViewTupleId>,

    // ---- flat weight arrays ----
    demand_weights: Vec<f64>,
    vulnerable_weights: Vec<f64>,

    // ---- CSR adjacency (both directions) ----
    /// demand → witness bases (row order = witness-set order: sorted).
    demand_offsets: Vec<u32>,
    demand_witnesses: Vec<u32>,
    /// base → incident vulnerable view tuples (rows sorted ascending).
    incidence_offsets: Vec<u32>,
    incidence: Vec<u32>,
    /// base → demands whose witness set contains it (rows sorted).
    hit_offsets: Vec<u32>,
    hit_demands: Vec<u32>,
    /// vulnerable → candidate witnesses (`ws(s) ∩ 𝒞`).
    vulnerable_offsets: Vec<u32>,
    vulnerable_witnesses: Vec<u32>,

    // ---- packed bitset rows (kernel layer) ----
    /// demand → witness-base membership, one packed row per demand over
    /// the base universe. `witness_mask_row(d)` ∩ deletion mask ≠ ∅ is the
    /// branch-free form of "`mask` eliminates `d`".
    witness_masks: BitMatrix,
    /// vulnerable → candidate-witness membership, one packed row per red
    /// element over the base universe — the word-parallel side of
    /// coverage counting and side-effect evaluation.
    vulnerable_masks: BitMatrix,

    /// `k_s = |ws(s)|` per vulnerable tuple — the **full** witness count,
    /// including non-candidate witnesses (the dual capacities of
    /// Algorithm 1 divide by this).
    vulnerable_k: Vec<u32>,

    // ---- the whole-`V` layer (DP, demand ordering, evaluation) ----
    /// The ΔV-independent layer: view-tuple layout, weights, witness
    /// paths, forest depths, pivot certification, scalars. Shared by
    /// `Arc` between an engine's successive projections; owned (fresh)
    /// for a cold compile.
    statics: Arc<StaticLayer>,
    /// Whether each view tuple is in `ΔV`, parallel to the layout.
    deleted: Vec<bool>,

    /// Demand indices in bottom-up processing order (decreasing witness-path
    /// top depth in the data-dual forest; identity when not a forest) —
    /// Algorithm 1's GVY-style order, precomputed.
    demand_order: Vec<u32>,

    // ---- scalars (Table I) ----
    norm_delta: usize,

    /// The mutation generation of the [`Problem`] this IR was built
    /// against (see [`Problem::generation`]); checked by
    /// [`Problem::verify_compiled`] to reject stale IR/problem pairings.
    generation: u64,
}

/// Flatten row lists into CSR (offsets, data).
fn to_csr(rows: Vec<Vec<u32>>) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = Vec::with_capacity(rows.len() + 1);
    offsets.push(0u32);
    let total: usize = rows.iter().map(Vec::len).sum();
    let mut data = Vec::with_capacity(total);
    for row in rows {
        data.extend(row);
        offsets.push(data.len() as u32);
    }
    (offsets, data)
}

impl CompiledInstance {
    /// Compile `problem` into the flat IR: build a fresh [`StaticLayer`]
    /// (one pass over the views plus one data-dual-graph construction)
    /// and assemble the active subproblem onto it. The incremental
    /// engine takes the same `CompiledInstance::assemble` path with a
    /// *shared* layer, so warm projections are byte-identical to cold
    /// compiles of the same problem state by construction.
    pub fn compile(problem: &Problem) -> CompiledInstance {
        metrics::IR_COMPILES.inc();
        let compile_start = crate::runtime::now();

        let statics = Arc::new(StaticLayer::build(problem));
        let demands: Vec<ViewTupleId> = problem.deletions().iter().copied().collect();
        let mut deleted = vec![false; statics.norm_v()];
        for &id in &demands {
            deleted[statics.dense(id)] = true;
        }
        let parts = ActiveParts {
            bases: problem.candidates(),
            demands,
            vulnerable: problem.vulnerable_preserved(),
            deleted,
        };
        let ir = Self::assemble(statics, parts, problem.generation());

        metrics::IR_COMPILE_MICROS.observe(compile_start.elapsed().as_micros() as u64);
        ir
    }

    /// Assemble the `O(active)` half of the IR onto a static layer: CSR
    /// adjacency in both directions, packed bitset rows, weights, and
    /// the bottom-up demand order. This is the single construction path
    /// for both cold compiles and the engine's incremental projections.
    pub(crate) fn assemble(
        statics: Arc<StaticLayer>,
        parts: ActiveParts,
        generation: u64,
    ) -> CompiledInstance {
        let ActiveParts {
            bases,
            demands,
            vulnerable,
            deleted,
        } = parts;
        debug_assert_eq!(deleted.len(), statics.norm_v());
        let base_of =
            |t: TupleId| -> Option<u32> { bases.binary_search(&t).ok().map(|b| b as u32) };

        let demand_weights: Vec<f64> = demands
            .iter()
            .map(|&id| statics.all_weights[statics.dense(id)])
            .collect();
        let vulnerable_weights: Vec<f64> = vulnerable
            .iter()
            .map(|&id| statics.all_weights[statics.dense(id)])
            .collect();

        // demand → bases, and its transpose base → demands.
        let mut demand_rows: Vec<Vec<u32>> = Vec::with_capacity(demands.len());
        let mut hit_rows: Vec<Vec<u32>> = vec![Vec::new(); bases.len()];
        for (di, &id) in demands.iter().enumerate() {
            let row: Vec<u32> = statics
                .path_of(statics.dense(id))
                .iter()
                .map(|&t| base_of(t).expect("demand witnesses are candidates by definition"))
                .collect();
            for &b in &row {
                hit_rows[b as usize].push(di as u32);
            }
            demand_rows.push(row);
        }

        // vulnerable → candidate witnesses, and its transpose
        // base → vulnerable (the red incidence).
        let mut vulnerable_rows: Vec<Vec<u32>> = Vec::with_capacity(vulnerable.len());
        let mut incidence_rows: Vec<Vec<u32>> = vec![Vec::new(); bases.len()];
        let mut vulnerable_k: Vec<u32> = Vec::with_capacity(vulnerable.len());
        for (ri, &id) in vulnerable.iter().enumerate() {
            let ws = statics.path_of(statics.dense(id));
            vulnerable_k.push(ws.len() as u32);
            let row: Vec<u32> = ws.iter().filter_map(|&t| base_of(t)).collect();
            for &b in &row {
                incidence_rows[b as usize].push(ri as u32);
            }
            vulnerable_rows.push(row);
        }

        // Bottom-up demand order: decreasing depth of each witness path's
        // shallowest vertex (its top / LCA) in the data-dual forest, ties
        // and the non-forest fallback in ascending `ViewTupleId` order.
        let mut demand_order: Vec<u32> = (0..demands.len() as u32).collect();
        if let Some(depths) = &statics.top_depth {
            demand_order.sort_by_key(|&di| {
                let id = demands[di as usize];
                (std::cmp::Reverse(depths[statics.dense(id)]), id)
            });
        }

        // Packed bitset rows share the dense base universe with the CSR
        // rows; solvers intersect them against deletion masks word by word.
        let witness_masks = BitMatrix::from_rows(
            demands.len(),
            bases.len(),
            demand_rows
                .iter()
                .map(|row| row.iter().map(|&b| b as usize)),
        );
        let vulnerable_masks = BitMatrix::from_rows(
            vulnerable.len(),
            bases.len(),
            vulnerable_rows
                .iter()
                .map(|row| row.iter().map(|&b| b as usize)),
        );

        let (demand_offsets, demand_witnesses) = to_csr(demand_rows);
        let (hit_offsets, hit_demands) = to_csr(hit_rows);
        let (vulnerable_offsets, vulnerable_witnesses) = to_csr(vulnerable_rows);
        let (incidence_offsets, incidence) = to_csr(incidence_rows);

        CompiledInstance {
            norm_delta: demands.len(),
            bases,
            demands,
            vulnerable,
            demand_weights,
            vulnerable_weights,
            demand_offsets,
            demand_witnesses,
            incidence_offsets,
            incidence,
            hit_offsets,
            hit_demands,
            vulnerable_offsets,
            vulnerable_witnesses,
            witness_masks,
            vulnerable_masks,
            vulnerable_k,
            statics,
            deleted,
            demand_order,
            generation,
        }
    }

    /// The shared ΔV-independent layer, for re-projection onto a
    /// component subset (the shard partitioner assembles per-component
    /// instances over the *same* layer: no tuple copying).
    pub(crate) fn statics_arc(&self) -> Arc<StaticLayer> {
        Arc::clone(&self.statics)
    }

    /// Assemble a standalone instance from raw witness structure — no
    /// `Problem`, no database. The out-of-core path uses this to lift
    /// per-component slices of a flat on-disk instance into small,
    /// solver-ready IRs without ever materializing the full instance
    /// (whose dense packed rows would be quadratic in the component
    /// count).
    ///
    /// `demands` / `vulnerable` are `(weight, witness set)` pairs; view
    /// tuples are laid out demands-first in a single synthetic view.
    /// Candidates are the demand witnesses, exactly as in a real
    /// compile; vulnerable witness sets may contain non-candidates
    /// (they count toward `k_s` but not toward the packed rows). Every
    /// demand must have at least one witness.
    pub fn synthesize(
        demands: &[(f64, Vec<TupleId>)],
        vulnerable: &[(f64, Vec<TupleId>)],
    ) -> CompiledInstance {
        let nd = demands.len();
        let n = nd + vulnerable.len();
        let view_tuples: Vec<ViewTupleId> = (0..n).map(|i| ViewTupleId::new(0, i)).collect();
        let mut all_weights: Vec<f64> = Vec::with_capacity(n);
        let mut paths: Vec<TupleId> = Vec::new();
        let mut path_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        path_offsets.push(0);
        let mut max_path = 1usize;
        for (w, ws) in demands.iter().chain(vulnerable.iter()) {
            let mut ws = ws.clone();
            ws.sort_unstable();
            ws.dedup();
            max_path = max_path.max(ws.len());
            all_weights.push(*w);
            paths.extend_from_slice(&ws);
            path_offsets.push(paths.len() as u32);
        }
        let mut bases: Vec<TupleId> = Vec::new();
        for (i, (_, ws)) in demands.iter().enumerate() {
            assert!(
                !ws.is_empty(),
                "synthesize: demand {i} has an empty witness set"
            );
            bases.extend_from_slice(ws);
        }
        bases.sort_unstable();
        bases.dedup();

        let statics = StaticLayer {
            view_tuples,
            all_weights,
            path_offsets,
            paths,
            top_depth: None,
            pivot: None,
            forest_case: false,
            l: max_path,
            num_queries: 1,
            norm_v: n,
        };
        let mut deleted = vec![false; n];
        for d in deleted.iter_mut().take(nd) {
            *d = true;
        }
        let parts = ActiveParts {
            bases,
            demands: (0..nd).map(|i| ViewTupleId::new(0, i)).collect(),
            vulnerable: (nd..n).map(|i| ViewTupleId::new(0, i)).collect(),
            deleted,
        };
        Self::assemble(Arc::new(statics), parts, 0)
    }

    // ---- interning ----

    /// Candidate base tuples `𝒞`, sorted ascending.
    pub fn bases(&self) -> &[TupleId] {
        &self.bases
    }

    /// Number of candidate base tuples.
    pub fn num_bases(&self) -> usize {
        self.bases.len()
    }

    /// The base tuple behind dense index `b`.
    pub fn base(&self, b: u32) -> TupleId {
        self.bases[b as usize]
    }

    /// Dense index of a base tuple, if it is a candidate.
    pub fn base_index(&self, t: TupleId) -> Option<u32> {
        self.bases.binary_search(&t).ok().map(|b| b as u32)
    }

    /// `ΔV`, ascending.
    pub fn demands(&self) -> &[ViewTupleId] {
        &self.demands
    }

    /// Number of demands `‖ΔV‖`.
    pub fn num_demands(&self) -> usize {
        self.demands.len()
    }

    /// The view tuple behind dense demand index `d`.
    pub fn demand(&self, d: u32) -> ViewTupleId {
        self.demands[d as usize]
    }

    /// Vulnerable preserved view tuples, ascending.
    pub fn vulnerable(&self) -> &[ViewTupleId] {
        &self.vulnerable
    }

    /// Number of vulnerable preserved view tuples.
    pub fn num_vulnerable(&self) -> usize {
        self.vulnerable.len()
    }

    /// The view tuple behind dense red index `r`.
    pub fn vulnerable_id(&self, r: u32) -> ViewTupleId {
        self.vulnerable[r as usize]
    }

    // ---- weights ----

    /// Weight of demand `d` (balanced objective's prize).
    pub fn demand_weight(&self, d: u32) -> f64 {
        self.demand_weights[d as usize]
    }

    /// Weight of vulnerable tuple `r` (side-effect contribution).
    pub fn vulnerable_weight(&self, r: u32) -> f64 {
        self.vulnerable_weights[r as usize]
    }

    // ---- CSR rows ----

    /// Witness bases of demand `d` (sorted dense base indices).
    pub fn demand_row(&self, d: u32) -> &[u32] {
        let (lo, hi) = (
            self.demand_offsets[d as usize],
            self.demand_offsets[d as usize + 1],
        );
        &self.demand_witnesses[lo as usize..hi as usize]
    }

    /// Vulnerable view tuples incident to base `b` (sorted dense red
    /// indices). Its length is the **red degree** of `b` (Algorithm 2's
    /// threshold quantity).
    pub fn incidence_row(&self, b: u32) -> &[u32] {
        let (lo, hi) = (
            self.incidence_offsets[b as usize],
            self.incidence_offsets[b as usize + 1],
        );
        &self.incidence[lo as usize..hi as usize]
    }

    /// Demands whose witness set contains base `b` (sorted dense demand
    /// indices) — the blue rows of the Red-Blue image.
    pub fn hit_row(&self, b: u32) -> &[u32] {
        let (lo, hi) = (
            self.hit_offsets[b as usize],
            self.hit_offsets[b as usize + 1],
        );
        &self.hit_demands[lo as usize..hi as usize]
    }

    /// Candidate witnesses of vulnerable tuple `r` (`ws(s) ∩ 𝒞`).
    pub fn vulnerable_row(&self, r: u32) -> &[u32] {
        let (lo, hi) = (
            self.vulnerable_offsets[r as usize],
            self.vulnerable_offsets[r as usize + 1],
        );
        &self.vulnerable_witnesses[lo as usize..hi as usize]
    }

    /// `k_s`: full witness-set size of vulnerable tuple `r` (including
    /// non-candidate witnesses).
    pub fn vulnerable_k(&self, r: u32) -> u32 {
        self.vulnerable_k[r as usize]
    }

    /// Red degree of base `b`: number of vulnerable view tuples whose
    /// witness set contains it.
    pub fn red_degree(&self, b: u32) -> usize {
        self.incidence_row(b).len()
    }

    // ---- whole-V layer ----

    /// All view tuple ids, ascending.
    pub fn view_tuples(&self) -> &[ViewTupleId] {
        &self.statics.view_tuples
    }

    /// Weight of the `i`-th view tuple.
    pub fn view_weight(&self, i: usize) -> f64 {
        self.statics.all_weights[i]
    }

    /// Whether the `i`-th view tuple is in `ΔV`.
    pub fn view_deleted(&self, i: usize) -> bool {
        self.deleted[i]
    }

    /// Witness path of the `i`-th view tuple (layout order).
    pub fn path(&self, i: usize) -> &[TupleId] {
        self.statics.path_of(i)
    }

    /// Demand indices in bottom-up (decreasing top-depth) order.
    pub fn demand_order(&self) -> &[u32] {
        &self.demand_order
    }

    /// The pivot-forest structure, when certified (§IV.E).
    pub fn pivot(&self) -> Option<&PivotData> {
        self.statics.pivot.as_ref()
    }

    /// Whether the instance is a §IV.B forest case.
    pub fn forest_case(&self) -> bool {
        self.statics.forest_case
    }

    // ---- scalars ----

    /// `l = max arity(Q)`.
    pub fn l(&self) -> usize {
        self.statics.l
    }

    /// Number of queries `|Q|`.
    pub fn num_queries(&self) -> usize {
        self.statics.num_queries
    }

    /// `‖V‖`.
    pub fn norm_v(&self) -> usize {
        self.statics.norm_v
    }

    /// `‖ΔV‖`.
    pub fn norm_delta(&self) -> usize {
        self.norm_delta
    }

    /// The problem mutation generation this IR was built against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A structural digest (FNV-1a over every solver-visible field
    /// except the generation stamp). Two instances with equal digests
    /// present identical data to every solver; the differential suites
    /// use this as a strong cold-vs-incremental equality check.
    pub fn shape_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for &t in &self.bases {
            h.write_u64(t.relation.0 as u64);
            h.write_u64(t.index as u64);
        }
        for set in [&self.demands, &self.vulnerable, &self.statics.view_tuples] {
            h.write_u64(set.len() as u64);
            for id in set.iter() {
                h.write_u64(id.view as u64);
                h.write_u64(id.index as u64);
            }
        }
        for ws in [
            &self.demand_weights,
            &self.vulnerable_weights,
            &self.statics.all_weights,
        ] {
            h.write_u64(ws.len() as u64);
            for &w in ws.iter() {
                h.write_u64(w.to_bits());
            }
        }
        for csr in [
            &self.demand_offsets,
            &self.demand_witnesses,
            &self.incidence_offsets,
            &self.incidence,
            &self.hit_offsets,
            &self.hit_demands,
            &self.vulnerable_offsets,
            &self.vulnerable_witnesses,
            &self.vulnerable_k,
            &self.demand_order,
            &self.statics.path_offsets,
        ] {
            h.write_u64(csr.len() as u64);
            for &x in csr.iter() {
                h.write_u64(x as u64);
            }
        }
        for &t in &self.statics.paths {
            h.write_u64(t.relation.0 as u64);
            h.write_u64(t.index as u64);
        }
        for mat in [&self.witness_masks, &self.vulnerable_masks] {
            h.write_u64(mat.words_per_row() as u64);
            for r in 0..mat.rows() {
                for &w in mat.row(r) {
                    h.write_u64(w);
                }
            }
        }
        for &d in &self.deleted {
            h.write_u64(d as u64);
        }
        if let Some(depths) = &self.statics.top_depth {
            for &d in depths.iter() {
                h.write_u64(d as u64);
            }
        }
        if let Some(p) = &self.statics.pivot {
            h.write_u64(p.endpoints.len() as u64);
            for &e in &p.endpoints {
                h.write_u64(e as u64);
            }
            for &v in p
                .children_offsets
                .iter()
                .chain(&p.children)
                .chain(&p.bfs_order)
                .chain(&p.roots)
            {
                h.write_u64(v as u64);
            }
        }
        h.write_u64(self.statics.forest_case as u64);
        h.write_u64(self.statics.l as u64);
        h.write_u64(self.statics.num_queries as u64);
        h.write_u64(self.statics.norm_v as u64);
        h.write_u64(self.norm_delta as u64);
        h.finish()
    }

    // ---- evaluation ----

    /// Dense deletion mask over the candidate bases for `sol`
    /// (non-candidate deletions have no entry: they cannot cut demands,
    /// and candidate-restricted solvers never produce them).
    pub fn base_mask(&self, sol: &Solution) -> Vec<bool> {
        let mut mask = vec![false; self.bases.len()];
        for &t in &sol.deleted {
            if let Some(b) = self.base_index(t) {
                mask[b as usize] = true;
            }
        }
        mask
    }

    /// Whether `mask` (over dense base indices) eliminates demand `d`.
    pub fn eliminates(&self, mask: &[bool], d: u32) -> bool {
        self.demand_row(d).iter().any(|&b| mask[b as usize])
    }

    /// Whether `mask` eliminates every demand.
    pub fn is_feasible_mask(&self, mask: &[bool]) -> bool {
        (0..self.demands.len() as u32).all(|d| self.eliminates(mask, d))
    }

    /// Side-effect of `mask`: total weight of vulnerable tuples losing a
    /// witness. Exact for candidate-restricted solutions (the only kind
    /// any solver emits), since non-candidate deletions damage only
    /// non-vulnerable tuples.
    pub fn side_effect_mask(&self, mask: &[bool]) -> f64 {
        (0..self.vulnerable.len() as u32)
            .filter(|&r| self.vulnerable_row(r).iter().any(|&b| mask[b as usize]))
            .map(|r| self.vulnerable_weight(r))
            .sum::<f64>()
            + 0.0
    }

    /// Balanced cost of `mask`: prizes of missed demands plus side-effect.
    pub fn balanced_cost_mask(&self, mask: &[bool]) -> f64 {
        let missed: f64 = (0..self.demands.len() as u32)
            .filter(|&d| !self.eliminates(mask, d))
            .map(|d| self.demand_weight(d))
            .sum();
        missed + self.side_effect_mask(mask)
    }

    // ---- packed evaluation (kernel layer) ----

    /// Packed witness row of demand `d` over the base universe — the
    /// bitset twin of [`demand_row`](Self::demand_row).
    pub fn witness_mask_row(&self, d: u32) -> &[u64] {
        self.witness_masks.row(d as usize)
    }

    /// Packed candidate-witness row of vulnerable tuple `r` — the bitset
    /// twin of [`vulnerable_row`](Self::vulnerable_row).
    pub fn vulnerable_mask_row(&self, r: u32) -> &[u64] {
        self.vulnerable_masks.row(r as usize)
    }

    /// Words per packed base row (`num_bases.div_ceil(64)`); every
    /// deletion [`BitSet`] over the base universe has this many words.
    pub fn base_words(&self) -> usize {
        self.witness_masks.words_per_row()
    }

    /// Packed deletion mask over the candidate bases for `sol` (the bitset
    /// twin of [`base_mask`](Self::base_mask); non-candidate deletions
    /// have no bit).
    pub fn base_bits(&self, sol: &Solution) -> BitSet {
        let mut bits = BitSet::new(self.bases.len());
        for &t in &sol.deleted {
            if let Some(b) = self.base_index(t) {
                bits.insert(b as usize);
            }
        }
        bits
    }

    /// Packed base-index set for the given tuples (non-candidates are
    /// ignored, exactly as in [`base_bits`](Self::base_bits)).
    pub fn tuple_bits(&self, tuples: impl IntoIterator<Item = TupleId>) -> BitSet {
        let mut bits = BitSet::new(self.bases.len());
        for t in tuples {
            if let Some(b) = self.base_index(t) {
                bits.insert(b as usize);
            }
        }
        bits
    }

    /// Whether the packed deletion mask eliminates demand `d` — one
    /// branch-free AND sweep over the packed witness row.
    pub fn eliminates_bits(&self, deleted: &BitSet, d: u32) -> bool {
        words::intersects(self.witness_mask_row(d), deleted.words())
    }

    /// Whether the packed deletion mask eliminates every demand.
    pub fn is_feasible_bits(&self, deleted: &BitSet) -> bool {
        (0..self.demands.len() as u32).all(|d| self.eliminates_bits(deleted, d))
    }

    /// Side-effect of a packed deletion mask. Identical sum order (and
    /// therefore bit-identical result) to
    /// [`side_effect_mask`](Self::side_effect_mask): vulnerable indices
    /// ascending.
    pub fn side_effect_bits(&self, deleted: &BitSet) -> f64 {
        (0..self.vulnerable.len() as u32)
            .filter(|&r| words::intersects(self.vulnerable_mask_row(r), deleted.words()))
            .map(|r| self.vulnerable_weight(r))
            .sum()
    }

    /// Balanced cost of a packed deletion mask — bit-identical to
    /// [`balanced_cost_mask`](Self::balanced_cost_mask) on the same mask.
    pub fn balanced_cost_bits(&self, deleted: &BitSet) -> f64 {
        let missed: f64 = (0..self.demands.len() as u32)
            .filter(|&d| !self.eliminates_bits(deleted, d))
            .map(|d| self.demand_weight(d))
            .sum();
        missed + self.side_effect_bits(deleted)
    }

    /// [`Solution`]-level wrappers over the packed evaluators.
    pub fn side_effect_of(&self, sol: &Solution) -> f64 {
        self.side_effect_bits(&self.base_bits(sol))
    }

    /// Balanced cost of a candidate-restricted solution.
    pub fn balanced_cost_of(&self, sol: &Solution) -> f64 {
        self.balanced_cost_bits(&self.base_bits(sol))
    }

    /// Whether `sol` eliminates every demand (exact for any solution:
    /// demand witnesses are candidates by definition).
    pub fn is_feasible_of(&self, sol: &Solution) -> bool {
        self.is_feasible_bits(&self.base_bits(sol))
    }
}

/// FNV-1a 64-bit, fed with little-endian `u64`s — the zero-dependency
/// structural hash behind [`CompiledInstance::shape_digest`] and the
/// shard partitioner's per-component digests.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;

    fn fig1() -> Problem {
        fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        })
    }

    #[test]
    fn fig1_shapes() {
        let p = fig1();
        let ir = CompiledInstance::compile(&p);
        assert_eq!(ir.num_bases(), 2, "T1(John,TKDE) and T2(TKDE,XML,30)");
        assert_eq!(ir.num_demands(), 1);
        assert_eq!(ir.num_vulnerable(), 3);
        assert_eq!(ir.norm_v(), 7);
        assert_eq!(ir.l(), 3);
        // The single demand's witnesses are both bases.
        assert_eq!(ir.demand_row(0), &[0, 1]);
        // Red degrees: T1 side damages 1 (John/CUBE), T2 side 2 (Joe, Tom).
        let mut degs: Vec<usize> = (0..2).map(|b| ir.red_degree(b)).collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![1, 2]);
    }

    #[test]
    fn csr_rows_are_sorted_and_consistent() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        for d in 0..ir.num_demands() as u32 {
            let row = ir.demand_row(d);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            // Transpose consistency: every witness's hit row names d.
            for &b in row {
                assert!(ir.hit_row(b).contains(&d));
            }
        }
        for r in 0..ir.num_vulnerable() as u32 {
            for &b in ir.vulnerable_row(r) {
                assert!(ir.incidence_row(b).contains(&r));
            }
            assert!(ir.vulnerable_k(r) as usize >= ir.vulnerable_row(r).len());
        }
    }

    #[test]
    fn evaluation_matches_ground_truth() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        // Evaluate every single-candidate deletion both ways.
        for &t in ir.bases() {
            let sol = Solution::from_tuples([t]);
            assert_eq!(ir.is_feasible_of(&sol), sol.is_feasible(&p));
            assert!((ir.side_effect_of(&sol) - sol.side_effect(&p)).abs() < 1e-12);
            assert!((ir.balanced_cost_of(&sol) - sol.balanced_cost(&p)).abs() < 1e-12);
        }
        // And the full candidate set (always feasible).
        let all = Solution::from_tuples(ir.bases().iter().copied());
        assert!(ir.is_feasible_of(&all));
        assert!((ir.side_effect_of(&all) - all.side_effect(&p)).abs() < 1e-12);
    }

    #[test]
    fn packed_rows_agree_with_csr() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        assert_eq!(ir.base_words(), ir.num_bases().div_ceil(64));
        for d in 0..ir.num_demands() as u32 {
            let from_bits: Vec<u32> = words::iter_ones(ir.witness_mask_row(d))
                .map(|b| b as u32)
                .collect();
            assert_eq!(from_bits, ir.demand_row(d), "demand {d} packed row");
        }
        for r in 0..ir.num_vulnerable() as u32 {
            let from_bits: Vec<u32> = words::iter_ones(ir.vulnerable_mask_row(r))
                .map(|b| b as u32)
                .collect();
            assert_eq!(from_bits, ir.vulnerable_row(r), "vulnerable {r} packed row");
        }
    }

    #[test]
    fn packed_evaluators_match_mask_evaluators() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        // Pseudo-random subsets of the candidate bases, evaluated both ways.
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..32 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mask: Vec<bool> = (0..ir.num_bases())
                .map(|b| seed >> (b % 64) & 1 == 1)
                .collect();
            let bits = BitSet::from_indices(
                ir.num_bases(),
                mask.iter().enumerate().filter(|(_, &m)| m).map(|(b, _)| b),
            );
            assert_eq!(ir.is_feasible_bits(&bits), ir.is_feasible_mask(&mask));
            assert_eq!(ir.side_effect_bits(&bits), ir.side_effect_mask(&mask));
            assert_eq!(ir.balanced_cost_bits(&bits), ir.balanced_cost_mask(&mask));
            for d in 0..ir.num_demands() as u32 {
                assert_eq!(ir.eliminates_bits(&bits, d), ir.eliminates(&mask, d));
            }
        }
    }

    #[test]
    fn base_bits_matches_base_mask() {
        let p = fig1();
        let ir = CompiledInstance::compile(&p);
        let sol = Solution::from_tuples([ir.base(0)]);
        let mask = ir.base_mask(&sol);
        let bits = ir.base_bits(&sol);
        for (b, &m) in mask.iter().enumerate() {
            assert_eq!(bits.contains(b), m);
        }
        assert_eq!(bits.capacity(), ir.num_bases());
    }

    #[test]
    fn pivot_structure_compiled_for_star() {
        let p = star_problem(6, &[1, 3]);
        let ir = CompiledInstance::compile(&p);
        let pivot = ir.pivot().expect("stars are pivot forests");
        assert_eq!(pivot.endpoints.len(), ir.view_tuples().len());
        assert!(!pivot.roots.is_empty());
        // Children CSR covers every vertex.
        assert_eq!(pivot.children_offsets.len(), pivot.num_vertices() + 1);
    }

    #[test]
    fn fig1_is_not_a_pivot_forest() {
        let ir = CompiledInstance::compile(&fig1());
        assert!(ir.pivot().is_none());
    }

    #[test]
    fn demand_order_is_a_permutation() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = CompiledInstance::compile(&p);
        let mut seen = ir.demand_order().to_vec();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..ir.num_demands() as u32).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn compile_counter_increments() {
        let before = compile_count();
        let _ = CompiledInstance::compile(&fig1());
        assert!(compile_count() > before);
    }

    #[test]
    fn compiled_instance_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledInstance>();
    }
}
