//! Fault injection for the portfolio runtime.
//!
//! [`FaultySolver`] wraps any [`Solver`] and misbehaves on command:
//! panicking, stalling against the budget, draining the budget,
//! failing transiently, starting slow, or returning infeasible /
//! corrupt solutions. The fault-injection test suite drives the
//! portfolio with these to prove the two runtime invariants — a panic
//! never escapes, and an unverified solution is never reported — hold
//! under every failure mode, not just the happy path. The serving
//! daemon's chaos harness reuses the same wrappers to exercise its
//! retry/backoff and graceful-degradation ladder deterministically.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use crate::solvers::local_search::Objective;
use delprop_relation::{RelationId, TupleId};

use super::budget::Budget;
use super::solver::{Guarantee, Solver};
use super::sync::{self, AtomicU64, Ordering};

/// The failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Behave normally (delegate to the inner solver).
    None,
    /// Panic mid-solve.
    Panic,
    /// Spin until stopped from outside — models a solver stuck in a
    /// loop. Each iteration first **polls** the budget without charging
    /// ([`Budget::poll`]: handle + pool-wide cancellation, sticky
    /// exhaustion, wall-clock deadline), then charges one tick so a
    /// finite tick budget still drains to termination. Under a budget
    /// with no limit, no deadline, and no cancellation this genuinely
    /// hangs, which is the point.
    Stall,
    /// Drain the entire remaining tick budget in one charge, then fail.
    ExhaustBudget,
    /// Fail the first `fail_count` solve calls with a typed error, then
    /// behave normally — a transient outage the retry/backoff path must
    /// ride out. The counter is per-wrapper (interior, atomic), so one
    /// wrapper shared across request attempts recovers deterministically
    /// on attempt `fail_count + 1`.
    Transient {
        /// Number of leading solve calls that fail.
        fail_count: u32,
    },
    /// Succeed from the first call, but charge `warmup_ticks >> attempt`
    /// extra budget ticks on attempt `attempt` (0-based) before
    /// delegating — a cold-start cost that halves on every retry. Under
    /// a tight per-attempt budget the early attempts exhaust it and a
    /// caller retrying with backoff succeeds once the warm-up fits.
    SlowStart {
        /// Extra ticks charged by the first attempt.
        warmup_ticks: u64,
    },
    /// Return the empty solution (infeasible whenever `ΔV` is nonempty).
    Infeasible,
    /// Return a solution of fabricated [`TupleId`]s that exist in no
    /// relation — verification must reject it (and contain any panic the
    /// bogus ids cause).
    Corrupt,
    /// Return a typed error without doing any work.
    TypedError,
}

/// A [`Solver`] wrapper that injects one [`FaultMode`].
pub struct FaultySolver<S> {
    inner: S,
    mode: FaultMode,
    /// Solve calls seen so far — drives the stateful modes
    /// ([`FaultMode::Transient`], [`FaultMode::SlowStart`]); through the
    /// sync facade because racing members share one wrapper across
    /// threads.
    attempts: AtomicU64,
}

impl<S: Solver> FaultySolver<S> {
    /// Wrap `inner`, injecting `mode` on every solve.
    pub fn new(inner: S, mode: FaultMode) -> Self {
        FaultySolver {
            inner,
            mode,
            attempts: AtomicU64::new(0),
        }
    }

    /// Number of solve calls this wrapper has seen.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed) // ordering: monotonic counter, no data published
    }
}

impl<S: Solver> Solver for FaultySolver<S> {
    fn name(&self) -> &'static str {
        match self.mode {
            FaultMode::None => self.inner.name(),
            FaultMode::Panic => "faulty_panic",
            FaultMode::Stall => "faulty_stall",
            FaultMode::ExhaustBudget => "faulty_exhaust",
            FaultMode::Transient { .. } => "faulty_transient",
            FaultMode::SlowStart { .. } => "faulty_slow_start",
            FaultMode::Infeasible => "faulty_infeasible",
            FaultMode::Corrupt => "faulty_corrupt",
            FaultMode::TypedError => "faulty_typed_error",
        }
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn applies(&self, problem: &Problem) -> bool {
        self.inner.applies(problem)
    }

    fn guarantee(&self, problem: &Problem) -> Guarantee {
        self.inner.guarantee(problem)
    }

    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        // Ordering: Relaxed — a monotone attempt counter; the stateful
        // modes only need each solve call to observe a distinct value,
        // which the RMW's atomicity provides.
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            FaultMode::None => self.inner.solve(problem, budget),
            FaultMode::Panic => panic!("injected panic from {}", self.name()),
            FaultMode::Stall => loop {
                // Poll first: a cancelled or deadline-expired stall must
                // stop *without* charging, so a stuck member can be
                // reaped by `Budget::cancel_all` even on an unlimited
                // pool and never outlives its request's deadline.
                budget.poll()?;
                budget.checkpoint()?;
                sync::spin_loop();
            },
            FaultMode::ExhaustBudget => {
                // Two charges: the first fills the pool exactly to its
                // limit (a refused over-charge would not move the
                // counter), the second trips sticky exhaustion.
                let remaining = budget.remaining();
                if remaining < u64::MAX {
                    budget.charge(remaining)?;
                }
                budget.charge(1)?;
                // Only reachable under an unlimited budget (which cannot
                // drain); still report exhaustion rather than pretending
                // to have solved anything.
                Err(budget.error())
            }
            FaultMode::Transient { fail_count } => {
                if attempt < u64::from(fail_count) {
                    Err(CoreError::StructureMismatch {
                        solver: "faulty_transient",
                        reason: format!(
                            "injected transient failure {} of {fail_count}",
                            attempt + 1
                        ),
                    })
                } else {
                    self.inner.solve(problem, budget)
                }
            }
            FaultMode::SlowStart { warmup_ticks } => {
                let warmup = warmup_ticks >> attempt.min(63);
                if warmup > 0 {
                    budget.charge(warmup)?;
                }
                self.inner.solve(problem, budget)
            }
            FaultMode::Infeasible => Ok(Solution::empty()),
            FaultMode::Corrupt => Ok(Solution::from_tuples([
                TupleId::new(RelationId(usize::MAX), usize::MAX),
                TupleId::new(RelationId(0), usize::MAX),
            ])),
            FaultMode::TypedError => Err(CoreError::StructureMismatch {
                solver: "faulty_typed_error",
                reason: "injected typed error".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::solver::GreedySolver;
    use crate::test_support::chain_problem;

    #[test]
    fn none_mode_is_transparent() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::None);
        assert_eq!(f.name(), "greedy");
        let sol = f.solve(&p, &Budget::unlimited()).unwrap();
        assert!(sol.is_feasible(&p));
    }

    #[test]
    fn stall_terminates_under_a_finite_budget() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::Stall);
        let budget = Budget::with_ticks(500);
        let err = f.solve(&p, &budget).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
        assert!(budget.is_exhausted());
    }

    #[test]
    fn stall_observes_pool_wide_cancellation_without_charging() {
        // Regression: an unlimited budget gives the stall loop no tick
        // limit and no deadline to drain against — before `Budget::poll`
        // and `cancel_all`, a stalled member whose own handle token was
        // never set could only be stopped by pool exhaustion and
        // outlived its request. Now the request-scoped kill switch
        // reaches it, and the refusal charges nothing.
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::Stall);
        let root = Budget::unlimited();
        let member = root.share_labeled("faulty_stall");
        let err = std::thread::scope(|s| {
            let h = s.spawn(|| f.solve(&p, &member).unwrap_err());
            root.cancel_all_with_cause("deadline");
            h.join().expect("stall thread must terminate")
        });
        assert!(matches!(err, CoreError::Cancelled { .. }), "got {err:?}");
        assert_eq!(member.cancel_cause(), Some("deadline"));
        // `used` may include ticks charged before the cancel landed,
        // but the pool must not be exhausted: the stall was *cancelled*,
        // not drained.
        assert!(!root.is_exhausted());
    }

    #[test]
    fn exhaust_budget_drains_everything() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::ExhaustBudget);
        let budget = Budget::with_ticks(10_000);
        let err = f.solve(&p, &budget).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn transient_fails_n_times_then_recovers() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::Transient { fail_count: 2 });
        for k in 1..=2 {
            let err = f.solve(&p, &Budget::unlimited()).unwrap_err();
            match err {
                CoreError::StructureMismatch { reason, .. } => {
                    assert!(reason.contains(&format!("failure {k} of 2")), "{reason}")
                }
                other => panic!("expected typed transient error, got {other:?}"),
            }
        }
        let sol = f.solve(&p, &Budget::unlimited()).unwrap();
        assert!(sol.is_feasible(&p), "third call must succeed");
        assert_eq!(f.attempts(), 3);
    }

    #[test]
    fn slow_start_warmup_halves_until_it_fits() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(
            GreedySolver,
            FaultMode::SlowStart {
                warmup_ticks: 4_096,
            },
        );
        // Attempts 0..=2 charge 4096/2048/1024 warm-up ticks against a
        // 1500-tick budget: the first two exhaust it, the third fits
        // and the solve lands.
        for _ in 0..2 {
            let budget = Budget::with_ticks(1_500);
            let err = f.solve(&p, &budget).unwrap_err();
            assert!(matches!(err, CoreError::BudgetExhausted { .. }));
        }
        let budget = Budget::with_ticks(1_500);
        let sol = f.solve(&p, &budget).unwrap();
        assert!(sol.is_feasible(&p));
        assert!(budget.used() >= 1_024, "warm-up ticks were charged");
    }

    #[test]
    fn corrupt_solution_is_not_feasible_noise() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::Corrupt);
        let sol = f.solve(&p, &Budget::unlimited()).unwrap();
        assert!(!sol.is_feasible(&p), "fabricated ids cut nothing");
    }
}
