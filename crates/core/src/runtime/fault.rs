//! Fault injection for the portfolio runtime.
//!
//! [`FaultySolver`] wraps any [`Solver`] and misbehaves on command:
//! panicking, stalling against the budget, draining the budget, or
//! returning infeasible / corrupt solutions. The fault-injection test
//! suite drives the portfolio with these to prove the two runtime
//! invariants — a panic never escapes, and an unverified solution is
//! never reported — hold under every failure mode, not just the happy
//! path.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use crate::solvers::local_search::Objective;
use delprop_relation::{RelationId, TupleId};

use super::budget::Budget;
use super::solver::{Guarantee, Solver};

/// The failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Behave normally (delegate to the inner solver).
    None,
    /// Panic mid-solve.
    Panic,
    /// Spin on budget checkpoints until the budget drains, then return
    /// its error — models a solver stuck in a loop that at least
    /// cooperates with the budget. Requires a finite budget (under an
    /// unlimited one this would genuinely hang, which is the point).
    Stall,
    /// Drain the entire remaining tick budget in one charge, then fail.
    ExhaustBudget,
    /// Return the empty solution (infeasible whenever `ΔV` is nonempty).
    Infeasible,
    /// Return a solution of fabricated [`TupleId`]s that exist in no
    /// relation — verification must reject it (and contain any panic the
    /// bogus ids cause).
    Corrupt,
    /// Return a typed error without doing any work.
    TypedError,
}

/// A [`Solver`] wrapper that injects one [`FaultMode`].
pub struct FaultySolver<S> {
    inner: S,
    mode: FaultMode,
}

impl<S: Solver> FaultySolver<S> {
    /// Wrap `inner`, injecting `mode` on every solve.
    pub fn new(inner: S, mode: FaultMode) -> Self {
        FaultySolver { inner, mode }
    }
}

impl<S: Solver> Solver for FaultySolver<S> {
    fn name(&self) -> &'static str {
        match self.mode {
            FaultMode::None => self.inner.name(),
            FaultMode::Panic => "faulty_panic",
            FaultMode::Stall => "faulty_stall",
            FaultMode::ExhaustBudget => "faulty_exhaust",
            FaultMode::Infeasible => "faulty_infeasible",
            FaultMode::Corrupt => "faulty_corrupt",
            FaultMode::TypedError => "faulty_typed_error",
        }
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn applies(&self, problem: &Problem) -> bool {
        self.inner.applies(problem)
    }

    fn guarantee(&self, problem: &Problem) -> Guarantee {
        self.inner.guarantee(problem)
    }

    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        match self.mode {
            FaultMode::None => self.inner.solve(problem, budget),
            FaultMode::Panic => panic!("injected panic from {}", self.name()),
            FaultMode::Stall => loop {
                budget.checkpoint()?;
            },
            FaultMode::ExhaustBudget => {
                // Two charges: the first fills the pool exactly to its
                // limit (a refused over-charge would not move the
                // counter), the second trips sticky exhaustion.
                let remaining = budget.remaining();
                if remaining < u64::MAX {
                    budget.charge(remaining)?;
                }
                budget.charge(1)?;
                // Only reachable under an unlimited budget (which cannot
                // drain); still report exhaustion rather than pretending
                // to have solved anything.
                Err(budget.error())
            }
            FaultMode::Infeasible => Ok(Solution::empty()),
            FaultMode::Corrupt => Ok(Solution::from_tuples([
                TupleId::new(RelationId(usize::MAX), usize::MAX),
                TupleId::new(RelationId(0), usize::MAX),
            ])),
            FaultMode::TypedError => Err(CoreError::StructureMismatch {
                solver: "faulty_typed_error",
                reason: "injected typed error".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::solver::GreedySolver;
    use crate::test_support::chain_problem;

    #[test]
    fn none_mode_is_transparent() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::None);
        assert_eq!(f.name(), "greedy");
        let sol = f.solve(&p, &Budget::unlimited()).unwrap();
        assert!(sol.is_feasible(&p));
    }

    #[test]
    fn stall_terminates_under_a_finite_budget() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::Stall);
        let budget = Budget::with_ticks(500);
        let err = f.solve(&p, &budget).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
        assert!(budget.is_exhausted());
    }

    #[test]
    fn exhaust_budget_drains_everything() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::ExhaustBudget);
        let budget = Budget::with_ticks(10_000);
        let err = f.solve(&p, &budget).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn corrupt_solution_is_not_feasible_noise() {
        let p = chain_problem(6, 3, &[1, 3]);
        let f = FaultySolver::new(GreedySolver, FaultMode::Corrupt);
        let sol = f.solve(&p, &Budget::unlimited()).unwrap();
        assert!(!sol.is_feasible(&p), "fabricated ids cut nothing");
    }
}
