//! The [`Solver`] trait: one contract over the ten entry points in
//! [`crate::solvers`], so the portfolio (and any other caller) can treat
//! "an algorithm from the paper" as a value — name it, ask whether it
//! applies to an instance, read off its guarantee, and run it under a
//! cooperative [`Budget`].
//!
//! Adapters for solvers whose hot loops are budget-aware (branch and
//! bound, simplex, local search) thread the budget all the way down;
//! polynomial-time solvers charge a coarse instance-sized amount up
//! front, which keeps tick accounting meaningful (a drained budget skips
//! them) without instrumenting loops that cannot run away.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use crate::solvers::local_search::{self, LocalSearchConfig, Objective};
use crate::solvers::{
    dp_tree, exact, general, lowdeg_tree, lp_round, primal_dual, primal_dual_balanced,
    single_query, source,
};
use delprop_setcover::exact::ExactConfig;
use std::fmt;

use super::budget::Budget;

/// What a solver promises about its output on instances where it
/// [`applies`](Solver::applies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Guarantee {
    /// The optimum (when the run completes within budget).
    Exact,
    /// Within the given multiplicative factor of the optimum.
    Ratio(f64),
    /// Feasible output, no proven ratio.
    Heuristic,
}

impl Guarantee {
    /// Coarse strength order: exact before ratio before heuristic. Used
    /// to order fallback chains; ties between ratios compare the factor.
    pub fn strength(&self) -> (u8, f64) {
        match self {
            Guarantee::Exact => (0, 0.0),
            Guarantee::Ratio(r) => (1, *r),
            Guarantee::Heuristic => (2, 0.0),
        }
    }
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guarantee::Exact => f.write_str("exact"),
            Guarantee::Ratio(r) => write!(f, "ratio {r:.3}"),
            Guarantee::Heuristic => f.write_str("heuristic"),
        }
    }
}

/// A portfolio member: a named algorithm with an applicability test, a
/// guarantee, and a budgeted solve.
///
/// `Send + Sync` is part of the contract: the racing portfolio runs
/// members concurrently against the shared compiled IR, so a member must
/// be shareable across threads (all members here are stateless or hold
/// only plain config).
pub trait Solver: Send + Sync {
    /// Stable short name, used in reports and error messages.
    fn name(&self) -> &'static str;

    /// The objective this solver minimizes. Members of a chain must all
    /// share the chain's objective.
    fn objective(&self) -> Objective {
        Objective::Standard
    }

    /// Whether this solver's structural precondition holds on `problem`.
    /// The portfolio skips members that do not apply.
    fn applies(&self, problem: &Problem) -> bool;

    /// The guarantee on instances where [`applies`](Solver::applies) is
    /// true (possibly instance-dependent, e.g. `2√‖V‖`).
    fn guarantee(&self, problem: &Problem) -> Guarantee;

    /// Solve under the budget. Implementations charge the budget at
    /// checkpoints and return [`CoreError::BudgetExhausted`] (rather than
    /// running on) when it drains — unless a best-so-far feasible
    /// solution exists, in which case they may return it and let
    /// verification decide. The same checkpoints observe cooperative
    /// cancellation: a cancelled handle makes `charge` fail with
    /// [`CoreError::Cancelled`], which implementations propagate the
    /// same way.
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError>;
}

/// Coarse up-front charge for polynomial-time solvers: proportional to
/// instance size, so a drained budget refuses them instead of running
/// them for free.
fn coarse_charge(problem: &Problem, budget: &Budget) -> Result<(), CoreError> {
    budget.charge((problem.norm_v() + problem.norm_delta()) as u64 + 1)
}

fn forest_case(problem: &Problem) -> bool {
    problem.compiled().forest_case()
}

/// §III single-query single-deletion exact algorithm (Cong et al.).
pub struct SingleQuerySolver;

impl Solver for SingleQuerySolver {
    fn name(&self) -> &'static str {
        "single_query"
    }
    fn applies(&self, problem: &Problem) -> bool {
        problem.queries().len() == 1 && problem.norm_delta() == 1
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Exact
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        single_query::solve_single_deletion(problem.compiled())
    }
}

/// `DPTreeVSE` (Algorithm 4): exact polynomial DP on pivot forests.
pub struct DpTreeSolver;

impl Solver for DpTreeSolver {
    fn name(&self) -> &'static str {
        "dp_tree"
    }
    fn applies(&self, problem: &Problem) -> bool {
        dp_tree::applies(problem.compiled())
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Exact
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        dp_tree::solve(problem.compiled())
    }
}

/// `LowDegTreeVSETwo` (Algorithms 2–3): `2√‖V‖` on forest cases.
pub struct LowDegTreeSolver;

impl Solver for LowDegTreeSolver {
    fn name(&self) -> &'static str {
        "lowdeg_tree"
    }
    fn applies(&self, problem: &Problem) -> bool {
        forest_case(problem)
    }
    fn guarantee(&self, problem: &Problem) -> Guarantee {
        Guarantee::Ratio(lowdeg_tree::ratio_bound(problem.compiled()))
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        lowdeg_tree::solve(problem.compiled())
    }
}

/// `PrimeDualVSE` (Algorithm 1): ratio `l` on forest cases.
pub struct PrimalDualSolver;

impl Solver for PrimalDualSolver {
    fn name(&self) -> &'static str {
        "primal_dual"
    }
    fn applies(&self, problem: &Problem) -> bool {
        forest_case(problem)
    }
    fn guarantee(&self, problem: &Problem) -> Guarantee {
        Guarantee::Ratio(problem.l().max(1) as f64)
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        primal_dual::solve_default(problem.compiled())
    }
}

/// LP relaxation + deterministic `1/l` rounding: certified `l`
/// approximation; simplex pivots charge the budget.
pub struct LpRoundSolver;

impl Solver for LpRoundSolver {
    fn name(&self) -> &'static str {
        "lp_round"
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, problem: &Problem) -> Guarantee {
        Guarantee::Ratio(problem.l().max(1) as f64)
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        lp_round::solve_budgeted(problem.compiled(), budget)
    }
}

/// Claim 1 / Lemma 1 general-case approximation (Red-Blue + LowDeg).
pub struct GeneralSolver;

impl Solver for GeneralSolver {
    fn name(&self) -> &'static str {
        "general"
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, problem: &Problem) -> Guarantee {
        Guarantee::Ratio(general::ratio_bound(problem.compiled()))
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        general::solve(problem.compiled())
    }
}

/// Greedy witness cover: the always-applicable last resort.
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Heuristic
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        general::solve_greedy(problem.compiled())
    }
}

/// Exact branch and bound through the Red-Blue reduction; node
/// expansions charge the budget and exhaustion degrades to the best
/// incumbent (unproven) when one exists.
#[derive(Default)]
pub struct ExactSolver {
    /// Node limit forwarded to the underlying search.
    pub config: ExactConfig,
}

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Exact
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        let out = exact::solve_budgeted(problem.compiled(), self.config, budget);
        match out.solution {
            Some(sol) => Ok(sol),
            None if budget.is_exhausted() || budget.is_cancelled() => Err(budget.error()),
            None => Err(CoreError::Infeasible {
                reason: "a deleted view tuple has no witnesses (non-key-preserving input?)"
                    .to_string(),
            }),
        }
    }
}

/// Greedy start + budgeted local-search descent (engineering extension).
pub struct LocalSearchSolver;

impl Solver for LocalSearchSolver {
    fn name(&self) -> &'static str {
        "local_search"
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Heuristic
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        let ir = problem.compiled();
        let start = general::solve_greedy(ir)?;
        Ok(local_search::improve_budgeted(
            ir,
            &start,
            LocalSearchConfig::default(),
            budget,
        ))
    }
}

/// Source side-effect greedy (`H(‖ΔV‖)` hitting set): minimizes |ΔD|,
/// but its output still cuts every demand, so it is a valid (heuristic)
/// member for the view-side-effect chain.
pub struct SourceGreedySolver;

impl Solver for SourceGreedySolver {
    fn name(&self) -> &'static str {
        "source_greedy"
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Heuristic
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        Ok(source::solve_greedy(problem.compiled()))
    }
}

/// Exact branch and bound for the **balanced** objective (Pos-Neg
/// reduction); truncation degrades to the best incumbent.
#[derive(Default)]
pub struct ExactBalancedSolver {
    /// Node limit forwarded to the underlying search.
    pub config: ExactConfig,
}

impl Solver for ExactBalancedSolver {
    fn name(&self) -> &'static str {
        "exact_balanced"
    }
    fn objective(&self) -> Objective {
        Objective::Balanced
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Exact
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        let out = exact::solve_balanced_budgeted(problem.compiled(), self.config, budget);
        // The balanced reduction always yields a solution (the empty
        // selection is feasible); proven_optimal may be false under
        // truncation, which verification tolerates.
        out.solution.ok_or_else(|| budget.error())
    }
}

/// §IV.C prize-collecting primal-dual for the balanced objective.
pub struct PrimalDualBalancedSolver;

impl Solver for PrimalDualBalancedSolver {
    fn name(&self) -> &'static str {
        "primal_dual_balanced"
    }
    fn objective(&self) -> Objective {
        Objective::Balanced
    }
    fn applies(&self, problem: &Problem) -> bool {
        forest_case(problem)
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Heuristic
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        primal_dual_balanced::solve_balanced(problem.compiled(), &Default::default())
            .map(|o| o.solution)
    }
}

/// Lemma 1 reduction for the balanced objective (general case).
pub struct GeneralBalancedSolver;

impl Solver for GeneralBalancedSolver {
    fn name(&self) -> &'static str {
        "general_balanced"
    }
    fn objective(&self) -> Objective {
        Objective::Balanced
    }
    fn applies(&self, _problem: &Problem) -> bool {
        true
    }
    fn guarantee(&self, _problem: &Problem) -> Guarantee {
        Guarantee::Heuristic
    }
    fn solve(&self, problem: &Problem, budget: &Budget) -> Result<Solution, CoreError> {
        coarse_charge(problem, budget)?;
        Ok(general::solve_balanced(problem.compiled()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_problem, star_problem};

    #[test]
    fn guarantee_strength_orders_exact_first() {
        assert!(Guarantee::Exact.strength() < Guarantee::Ratio(2.0).strength());
        assert!(Guarantee::Ratio(2.0).strength() < Guarantee::Ratio(3.0).strength());
        assert!(Guarantee::Ratio(1e9).strength() < Guarantee::Heuristic.strength());
    }

    #[test]
    fn guarantee_display() {
        assert_eq!(Guarantee::Exact.to_string(), "exact");
        assert!(Guarantee::Ratio(2.0).to_string().starts_with("ratio 2"));
        assert_eq!(Guarantee::Heuristic.to_string(), "heuristic");
    }

    #[test]
    fn applicability_matches_classification() {
        let star = star_problem(4, &[0, 2]); // pivot forest
        assert!(DpTreeSolver.applies(&star));
        assert!(LowDegTreeSolver.applies(&star));
        assert!(!SingleQuerySolver.applies(&star));
        assert!(GeneralSolver.applies(&star));
    }

    #[test]
    fn every_standard_member_solves_a_chain_feasibly() {
        let p = chain_problem(6, 3, &[1, 3]);
        let budget = Budget::unlimited();
        let members: Vec<Box<dyn Solver>> = vec![
            Box::new(ExactSolver::default()),
            Box::new(DpTreeSolver),
            Box::new(LowDegTreeSolver),
            Box::new(PrimalDualSolver),
            Box::new(LpRoundSolver),
            Box::new(GeneralSolver),
            Box::new(GreedySolver),
            Box::new(LocalSearchSolver),
            Box::new(SourceGreedySolver),
        ];
        for m in members.iter().filter(|m| m.applies(&p)) {
            let sol = m
                .solve(&p, &budget)
                .unwrap_or_else(|e| panic!("{} failed on an applicable instance: {e}", m.name()));
            assert!(sol.is_feasible(&p), "{} returned infeasible", m.name());
            assert_eq!(m.objective(), Objective::Standard);
        }
    }

    #[test]
    fn drained_budget_refuses_poly_solvers() {
        let p = chain_problem(6, 3, &[1, 3]);
        let budget = Budget::with_ticks(0);
        let err = GreedySolver.solve(&p, &budget).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
    }

    #[test]
    fn exact_solver_degrades_to_incumbent_or_typed_error() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        for ticks in [1, 64, 256, 4096] {
            let budget = Budget::with_ticks(ticks);
            match ExactSolver::default().solve(&p, &budget) {
                Ok(sol) => assert!(sol.is_feasible(&p)),
                Err(e) => assert!(matches!(e, CoreError::BudgetExhausted { .. })),
            }
        }
    }
}
