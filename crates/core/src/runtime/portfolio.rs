//! Verified fallback chains over [`Solver`] members.
//!
//! A [`Portfolio`] runs its members in guarantee order, isolates each one
//! behind `catch_unwind`, and **never** reports a solution it has not
//! verified: candidates must pass `Solution::is_feasible` (standard
//! objective) and `Solution::verify_by_reevaluation` (both objectives)
//! inside their own panic boundary. A member that panics, errors, times
//! out, or returns garbage is recorded in the report and the chain moves
//! on; the caller always gets either a verified [`Solution`] or a typed
//! [`CoreError`].
//!
//! [`Portfolio::solve_racing`] is the thread-parallel sibling of
//! [`Portfolio::solve_best`]: every applicable member runs on its own
//! thread against the shared compiled IR, drawing from one atomic
//! [`Budget`] pool through per-member [`Budget::share`] handles. As soon
//! as a member verifies, it cancels every member with a
//! weaker-or-equal guarantee (cooperatively — losers observe the token
//! at their next budget checkpoint); the winner among the verified
//! candidates is chosen exactly like the sequential path, by minimum
//! cost with chain order breaking ties.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use crate::solvers::local_search::Objective;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

use super::budget::{now, Budget};
use super::metrics;
use super::solver::{
    DpTreeSolver, GeneralBalancedSolver, GeneralSolver, GreedySolver, Guarantee, LowDegTreeSolver,
    LpRoundSolver, PrimalDualBalancedSolver, PrimalDualSolver, SingleQuerySolver, Solver,
};
use super::sync;
use super::trace::{Kind, Phase};

/// What happened to one member during a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberStatus {
    /// `applies()` was false on this instance.
    Skipped,
    /// An earlier member already produced a verified solution.
    NotReached,
    /// Produced a solution that passed verification.
    Verified { cost: f64 },
    /// Returned a solution that does not eliminate every `ΔV` tuple.
    RejectedInfeasible,
    /// Verification itself panicked on the returned solution (corrupt
    /// tuple ids, provenance disagreement, …); the panic was contained.
    RejectedVerification { message: String },
    /// The member panicked; the panic was contained.
    Panicked { message: String },
    /// A racing run cancelled this member because another member with a
    /// stronger-or-equal guarantee verified first.
    Cancelled,
    /// The member returned a typed error (budget exhaustion included).
    Failed { error: CoreError },
}

impl MemberStatus {
    /// Whether this member produced an accepted (verified) solution.
    pub fn is_verified(&self) -> bool {
        matches!(self, MemberStatus::Verified { .. })
    }
}

/// Per-member record of a portfolio run.
#[derive(Debug, Clone)]
pub struct MemberReport {
    /// The member's [`Solver::name`].
    pub name: &'static str,
    /// Its guarantee on this instance (where it applies).
    pub guarantee: Guarantee,
    /// What happened.
    pub status: MemberStatus,
    /// Wall-clock spent running (and verifying) this member, in µs.
    /// Zero for members that were skipped or not reached.
    pub micros: u64,
    /// Budget ticks this member itself charged (metered through its own
    /// [`Budget::share`] handle).
    pub ticks: u64,
    /// Ticks drained from the **shared pool** over this member's
    /// wall-clock window, by every handle. Equal to `ticks` in a
    /// sequential run; larger under racing contention, where the gap
    /// measures how much the rest of the field burned while this member
    /// ran.
    pub pool_ticks: u64,
}

impl fmt::Display for MemberReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): ", self.name, self.guarantee)?;
        match &self.status {
            MemberStatus::Skipped => f.write_str("skipped (does not apply)")?,
            MemberStatus::NotReached => f.write_str("not reached")?,
            MemberStatus::Verified { cost } => write!(f, "verified, cost {cost}")?,
            MemberStatus::RejectedInfeasible => f.write_str("rejected: infeasible output")?,
            MemberStatus::RejectedVerification { message } => {
                write!(f, "rejected: verification failed ({message})")?
            }
            MemberStatus::Panicked { message } => write!(f, "panicked (contained): {message}")?,
            MemberStatus::Cancelled => {
                f.write_str("cancelled (a stronger-or-equal member verified first)")?
            }
            MemberStatus::Failed { error } => write!(f, "failed: {error}")?,
        }
        if !matches!(
            self.status,
            MemberStatus::Skipped | MemberStatus::NotReached
        ) {
            write!(f, " [{} µs, {} ticks", self.micros, self.ticks)?;
            if self.pool_ticks != self.ticks {
                write!(f, " ({} pool)", self.pool_ticks)?;
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

/// A successful portfolio run: the winning verified solution plus the
/// full member-by-member report.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The verified solution.
    pub solution: Solution,
    /// Its cost under the portfolio's objective (side-effect for
    /// standard, balanced cost for balanced).
    pub cost: f64,
    /// Name of the member that produced it.
    pub winner: &'static str,
    /// One entry per member, in chain order.
    pub report: Vec<MemberReport>,
    /// Wall-clock spent obtaining the compiled instance IR, in µs. Near
    /// zero when the `Problem` had already compiled (the cache hit).
    pub compile_micros: u64,
    /// Budget ticks charged for the IR compile.
    pub compile_ticks: u64,
}

impl fmt::Display for PortfolioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "winner {} (cost {}, |ΔD| = {})",
            self.winner,
            self.cost,
            self.solution.len()
        )?;
        writeln!(
            f,
            "  ir compile: {} µs, {} ticks (shared by all members)",
            self.compile_micros, self.compile_ticks
        )?;
        for r in &self.report {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// An ordered chain of [`Solver`] members sharing one objective.
pub struct Portfolio {
    members: Vec<Box<dyn Solver>>,
    objective: Objective,
}

impl Portfolio {
    /// An empty chain for the given objective.
    pub fn new(objective: Objective) -> Self {
        Portfolio {
            members: Vec::new(),
            objective,
        }
    }

    /// The paper's standard-objective chain in guarantee order: exact
    /// polynomial cases first (single_query, dp_tree), then the forest
    /// approximations (lowdeg_tree, primal_dual), then the general-case
    /// certified rounding (lp_round), the Claim 1 reduction (general),
    /// and the greedy last resort.
    pub fn standard() -> Self {
        Portfolio::new(Objective::Standard)
            .with(SingleQuerySolver)
            .with(DpTreeSolver)
            .with(LowDegTreeSolver)
            .with(PrimalDualSolver)
            .with(LpRoundSolver)
            .with(GeneralSolver)
            .with(GreedySolver)
    }

    /// The balanced-objective chain: prize-collecting primal-dual on
    /// forest cases, then the Lemma 1 reduction (always applicable —
    /// every `ΔD` is balanced-feasible, so no further tail is needed).
    pub fn balanced() -> Self {
        Portfolio::new(Objective::Balanced)
            .with(PrimalDualBalancedSolver)
            .with(GeneralBalancedSolver)
    }

    /// Append a member. Panics if its objective differs from the
    /// chain's (a programming error, not an input error).
    pub fn with(mut self, member: impl Solver + 'static) -> Self {
        assert_eq!(
            member.objective(),
            self.objective,
            "portfolio member {} minimizes a different objective",
            member.name()
        );
        self.members.push(Box::new(member));
        self
    }

    /// The chain's objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Member names in chain order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Run the chain with first-verified-wins semantics: members run in
    /// order until one produces a solution that passes verification;
    /// later members are reported as [`MemberStatus::NotReached`].
    pub fn solve(&self, problem: &Problem, budget: &Budget) -> Result<PortfolioOutcome, CoreError> {
        self.run(problem, budget, true)
    }

    /// Run **every** applicable member and return the cheapest verified
    /// solution (for callers who prefer quality over latency).
    pub fn solve_best(
        &self,
        problem: &Problem,
        budget: &Budget,
    ) -> Result<PortfolioOutcome, CoreError> {
        self.run(problem, budget, false)
    }

    /// Compile the shared IR exactly once, up front: every member,
    /// applicability check, and verification reads this one index. The
    /// compile is charged to the budget like any other work
    /// (`‖V‖ + ‖ΔV‖ + 1` ticks — one pass over the instance); a budget
    /// too small for the compile fails the whole run immediately with
    /// the typed exhaustion error, before any member is attempted.
    fn compile_and_charge(
        &self,
        problem: &Problem,
        budget: &Budget,
    ) -> Result<(u64, u64), CoreError> {
        let span = budget.span(Phase::Compile, "ir");
        let compile_start = now();
        let _ir = problem.compiled();
        let compile_micros = compile_start.elapsed().as_micros() as u64;
        let compile_ticks = (problem.norm_v() + problem.norm_delta()) as u64 + 1;
        let charged = budget.charge(compile_ticks);
        span.end_with(if charged.is_ok() {
            "charged"
        } else {
            "budget_refused"
        });
        charged?;
        Ok((compile_micros, compile_ticks))
    }

    fn run(
        &self,
        problem: &Problem,
        budget: &Budget,
        stop_at_first: bool,
    ) -> Result<PortfolioOutcome, CoreError> {
        let (compile_micros, compile_ticks) = self.compile_and_charge(problem, budget)?;

        let mut report: Vec<MemberReport> = Vec::with_capacity(self.members.len());
        let mut best: Option<(Solution, f64, &'static str)> = None;

        for member in &self.members {
            let guarantee = member.guarantee(problem);
            let started = now();
            let pool_before = budget.used();
            // A fresh share per member: `own_used` then meters exactly
            // what this member charged, even if callers reuse the pool.
            let handle = budget.share_labeled(member.name());
            let status = if stop_at_first && best.is_some() {
                MemberStatus::NotReached
            } else if !member.applies(problem) {
                MemberStatus::Skipped
            } else {
                metrics::MEMBERS_RUN.inc();
                let span = handle.span(Phase::Member, member.name());
                let (status, candidate) = self.run_member(member.as_ref(), problem, &handle);
                span.end_with(status_label(&status));
                if let Some((solution, cost)) = candidate {
                    if best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
                        best = Some((solution, cost, member.name()));
                    }
                }
                status
            };
            let ran = !matches!(status, MemberStatus::Skipped | MemberStatus::NotReached);
            let micros = if ran {
                let micros = started.elapsed().as_micros() as u64;
                metrics::MEMBER_MICROS.observe(micros);
                micros
            } else {
                0
            };
            report.push(MemberReport {
                name: member.name(),
                guarantee,
                status: finalize_status(status),
                micros,
                ticks: if ran { handle.own_used() } else { 0 },
                pool_ticks: if ran {
                    budget.used().saturating_sub(pool_before)
                } else {
                    0
                },
            });
        }

        match best {
            Some((solution, cost, winner)) => Ok(PortfolioOutcome {
                solution,
                cost,
                winner,
                report,
                compile_micros,
                compile_ticks,
            }),
            None => Err(self.failure_error(budget, &report)),
        }
    }

    /// Race **every** applicable member on its own thread and return the
    /// cheapest verified solution — the parallel sibling of
    /// [`Portfolio::solve_best`].
    ///
    /// Every member draws from `budget`'s shared atomic pool through its
    /// own [`Budget::share`] handle. When a member's output verifies
    /// (and the pool is not exhausted), it cancels all members whose
    /// guarantee is weaker or equal; the cancelled members observe the
    /// token at their next checkpoint and unwind with
    /// [`CoreError::Cancelled`], reported as
    /// [`MemberStatus::Cancelled`]. Members with strictly stronger
    /// guarantees keep running, so the final choice — minimum verified
    /// cost, chain order breaking ties — matches the sequential
    /// `solve_best` cost on instances where the strongest applicable
    /// member completes (an exact member's verified run *is* the
    /// optimum, and every other verified candidate costs at least that).
    pub fn solve_racing(
        &self,
        problem: &Problem,
        budget: &Budget,
    ) -> Result<PortfolioOutcome, CoreError> {
        metrics::RACES.inc();
        let (compile_micros, compile_ticks) = self.compile_and_charge(problem, budget)?;

        struct RaceSlot {
            status: MemberStatus,
            candidate: Option<(Solution, f64)>,
            micros: u64,
            ticks: u64,
            pool_ticks: u64,
        }

        let n = self.members.len();
        let guarantees: Vec<Guarantee> =
            self.members.iter().map(|m| m.guarantee(problem)).collect();
        let applicable: Vec<bool> = self.members.iter().map(|m| m.applies(problem)).collect();
        // One share per member, labelled with the member name so each
        // thread's trace events separate into per-member span trees. The
        // caller's own handle is never cancelled, so `budget` stays
        // usable after the race.
        let handles: Vec<Budget> = self
            .members
            .iter()
            .map(|m| budget.share_labeled(m.name()))
            .collect();
        let mut slots: Vec<Option<RaceSlot>> = Vec::new();
        slots.resize_with(n, || None);

        sync::thread::scope(|scope| {
            for ((i, member), slot) in self.members.iter().enumerate().zip(slots.iter_mut()) {
                if !applicable[i] {
                    continue;
                }
                let (handles, guarantees, applicable) = (&handles, &guarantees, &applicable);
                scope.spawn(move || {
                    metrics::MEMBERS_RUN.inc();
                    let started = now();
                    let pool_before = handles[i].used();
                    let span = handles[i].span(Phase::Member, member.name());
                    let (status, candidate) =
                        self.run_member(member.as_ref(), problem, &handles[i]);
                    span.end_with(status_label(&status));
                    if candidate.is_some() && !handles[i].is_exhausted() {
                        // Dominance cancellation: a verified member
                        // releases everyone it dominates. Strictly
                        // stronger members race on. The cause names this
                        // member so the losers' traces can say who won.
                        handles[i].trace(Phase::Race, Kind::Event, "verified_first", 0);
                        let mine = guarantees[i].strength();
                        for (j, h) in handles.iter().enumerate() {
                            if j != i && applicable[j] && guarantees[j].strength() >= mine {
                                h.cancel_with_cause(member.name());
                            }
                        }
                    }
                    if matches!(
                        status,
                        MemberStatus::Failed {
                            error: CoreError::Cancelled { .. }
                        }
                    ) {
                        // Close this member's span tree with a Cancel
                        // event naming the member that requested it.
                        let cause = handles[i].cancel_cause().unwrap_or("unknown");
                        handles[i].trace(Phase::Cancel, Kind::Event, cause, 0);
                    }
                    *slot = Some(RaceSlot {
                        status,
                        candidate,
                        micros: started.elapsed().as_micros() as u64,
                        ticks: handles[i].own_used(),
                        pool_ticks: handles[i].used().saturating_sub(pool_before),
                    });
                });
            }
        });

        let mut report: Vec<MemberReport> = Vec::with_capacity(n);
        let mut best: Option<(Solution, f64, &'static str)> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            let name = self.members[i].name();
            match slot {
                None => report.push(MemberReport {
                    name,
                    guarantee: guarantees[i],
                    status: MemberStatus::Skipped,
                    micros: 0,
                    ticks: 0,
                    pool_ticks: 0,
                }),
                Some(s) => {
                    // Same tie-break as the sequential chain: strict `<`
                    // keeps the earliest member on equal cost.
                    if let Some((solution, cost)) = s.candidate {
                        if best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
                            best = Some((solution, cost, name));
                        }
                    }
                    report.push(MemberReport {
                        name,
                        guarantee: guarantees[i],
                        status: finalize_status(s.status),
                        micros: s.micros,
                        ticks: s.ticks,
                        pool_ticks: s.pool_ticks,
                    });
                }
            }
        }

        match best {
            Some((solution, cost, winner)) => Ok(PortfolioOutcome {
                solution,
                cost,
                winner,
                report,
                compile_micros,
                compile_ticks,
            }),
            None => Err(self.failure_error(budget, &report)),
        }
    }

    /// Solve by connected-component decomposition: partition the
    /// compiled instance into independent shards, run the deterministic
    /// per-shard chain on the work-stealing scheduler (every shard task
    /// drawing from `budget`'s shared pool), and merge the certified
    /// per-shard solutions (`crate::shard`, DESIGN.md §15).
    ///
    /// Unlike [`Portfolio::solve_racing`], verification composes from
    /// the per-shard checks (each shard's output is feasibility-checked
    /// and cost-evaluated on its own IR, then the merge re-checks
    /// feasibility and re-evaluates cost on the full IR); the merged
    /// guarantee is the weakest per-shard guarantee. A drained budget
    /// degrades the affected shards to their always-feasible incumbents
    /// instead of failing the run — inspect the report's guarantee (it
    /// weakens to `Heuristic`) to detect degradation.
    pub fn solve_sharded(
        &self,
        problem: &Problem,
        budget: &Budget,
    ) -> Result<PortfolioOutcome, CoreError> {
        let (compile_micros, compile_ticks) = self.compile_and_charge(problem, budget)?;
        let ir = problem.compiled_arc();
        let started = now();
        let pool_before = budget.used();
        let handle = budget.share_labeled("sharded");
        let span = handle.span(Phase::Member, "sharded");
        let out = crate::shard::solve_sharded_ir(&ir, self.objective, &handle);
        span.end_with(if out.is_ok() { "verified" } else { "failed" });
        let out = out?;
        let report = vec![MemberReport {
            name: "sharded",
            guarantee: out.guarantee,
            status: MemberStatus::Verified { cost: out.cost },
            micros: started.elapsed().as_micros() as u64,
            ticks: handle.own_used(),
            pool_ticks: budget.used().saturating_sub(pool_before),
        }];
        Ok(PortfolioOutcome {
            solution: out.solution,
            cost: out.cost,
            winner: "sharded",
            report,
            compile_micros,
            compile_ticks,
        })
    }

    /// Run one member inside its own panic boundary, then verify its
    /// output inside another. Returns the status plus the verified
    /// candidate (solution, cost) when there is one.
    fn run_member(
        &self,
        member: &dyn Solver,
        problem: &Problem,
        budget: &Budget,
    ) -> (MemberStatus, Option<(Solution, f64)>) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| member.solve(problem, budget)));
        let solution = match outcome {
            Err(payload) => {
                return (
                    MemberStatus::Panicked {
                        message: panic_message(payload),
                    },
                    None,
                )
            }
            Ok(Err(error)) => return (MemberStatus::Failed { error }, None),
            Ok(Ok(solution)) => solution,
        };
        self.verify(problem, solution, budget, member.name())
    }

    /// The verification contract: nothing is accepted on a member's word.
    ///
    /// - standard objective: the solution must eliminate every `ΔV` tuple
    ///   (`is_feasible`) **and** survive ground-truth re-materialization
    ///   (`verify_by_reevaluation`);
    /// - balanced objective: every `ΔD` is feasible by definition, so
    ///   only the re-materialization cross-check applies.
    ///
    /// Both checks run inside `catch_unwind`: corrupt tuple ids or a
    /// provenance disagreement panic in verification, and that panic must
    /// be contained exactly like a member's own.
    fn verify(
        &self,
        problem: &Problem,
        solution: Solution,
        budget: &Budget,
        member: &'static str,
    ) -> (MemberStatus, Option<(Solution, f64)>) {
        metrics::VERIFICATIONS.inc();
        let span = budget.span(Phase::Verify, member);
        // Stale-IR guard: the index the member solved against must
        // carry the problem's current mutation generation. A mismatch
        // means some caller installed or cached an IR across a
        // mutation; accepting a verification performed against it
        // would certify a solution for a different ΔV.
        if let Err(error) = problem.verify_compiled(problem.compiled()) {
            span.end_with("stale_compiled");
            return (MemberStatus::Failed { error }, None);
        }
        let verify_start = now();
        let objective = self.objective;
        let verified = panic::catch_unwind(AssertUnwindSafe(|| {
            let feasible = match objective {
                Objective::Standard => solution.is_feasible(problem),
                Objective::Balanced => true,
            };
            if !feasible {
                return None;
            }
            solution.verify_by_reevaluation(problem);
            Some(match objective {
                Objective::Standard => solution.side_effect(problem),
                Objective::Balanced => solution.balanced_cost(problem),
            })
        }));
        metrics::VERIFY_MICROS.observe(verify_start.elapsed().as_micros() as u64);
        let result = match verified {
            Err(payload) => (
                MemberStatus::RejectedVerification {
                    message: panic_message(payload),
                },
                None,
            ),
            Ok(None) => (MemberStatus::RejectedInfeasible, None),
            Ok(Some(cost)) if !cost.is_finite() => (
                MemberStatus::RejectedVerification {
                    message: format!("non-finite cost {cost}"),
                },
                None,
            ),
            Ok(Some(cost)) => (MemberStatus::Verified { cost }, Some((solution, cost))),
        };
        span.end_with(status_label(&result.0));
        result
    }

    /// No member produced a verified solution: prefer the budget error
    /// when the budget drained (the caller can retry with more), then the
    /// first member's typed error, then a generic infeasibility.
    fn failure_error(&self, budget: &Budget, report: &[MemberReport]) -> CoreError {
        if budget.is_exhausted() {
            return budget.error();
        }
        for r in report {
            if let MemberStatus::Failed { error } = &r.status {
                return error.clone();
            }
        }
        CoreError::Infeasible {
            reason: format!(
                "no portfolio member produced a verifiable solution ({} members tried)",
                report
                    .iter()
                    .filter(|r| !matches!(r.status, MemberStatus::Skipped))
                    .count()
            ),
        }
    }
}

/// Stable lowercase label for a status, used as span-end trace detail.
fn status_label(status: &MemberStatus) -> &'static str {
    match status {
        MemberStatus::Skipped => "skipped",
        MemberStatus::NotReached => "not_reached",
        MemberStatus::Verified { .. } => "verified",
        MemberStatus::RejectedInfeasible => "rejected_infeasible",
        MemberStatus::RejectedVerification { .. } => "rejected_verification",
        MemberStatus::Panicked { .. } => "panicked",
        MemberStatus::Cancelled => "cancelled",
        MemberStatus::Failed {
            error: CoreError::Cancelled { .. },
        } => "cancelled",
        MemberStatus::Failed {
            error: CoreError::BudgetExhausted { .. },
        } => "budget_exhausted",
        MemberStatus::Failed { .. } => "failed",
    }
}

/// Collapse a typed cancellation into its dedicated status: a member
/// that unwound with [`CoreError::Cancelled`] did not *fail*, it lost
/// the race.
fn finalize_status(status: MemberStatus) -> MemberStatus {
    match status {
        MemberStatus::Failed {
            error: CoreError::Cancelled { .. },
        } => MemberStatus::Cancelled,
        other => other,
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Solve with the standard-objective portfolio under no budget: the
/// recommended "just give me an answer" entry point.
pub fn solve_portfolio(problem: &Problem) -> Result<PortfolioOutcome, CoreError> {
    Portfolio::standard().solve(problem, &Budget::unlimited())
}

/// Solve with the balanced-objective portfolio under no budget.
pub fn solve_portfolio_balanced(problem: &Problem) -> Result<PortfolioOutcome, CoreError> {
    Portfolio::balanced().solve(problem, &Budget::unlimited())
}

/// Race the standard-objective portfolio under no budget: the parallel
/// `solve_best` entry point for callers with cores to spare.
pub fn solve_portfolio_racing(problem: &Problem) -> Result<PortfolioOutcome, CoreError> {
    Portfolio::standard().solve_racing(problem, &Budget::unlimited())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    fn fig1() -> Problem {
        fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        })
    }

    #[test]
    fn standard_portfolio_matches_optimum_on_easy_cases() {
        for p in [
            fig1(),
            chain_problem(8, 3, &[1, 4]),
            star_problem(4, &[0, 2]),
        ] {
            let out = solve_portfolio(&p).unwrap();
            assert!(out.solution.is_feasible(&p));
            let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
            // The winner on these families is exact (single_query/dp_tree).
            assert!(
                (out.cost - opt).abs() < 1e-9,
                "portfolio {} vs opt {opt} (winner {})",
                out.cost,
                out.winner
            );
        }
    }

    #[test]
    fn report_covers_every_member_in_order() {
        let p = fig1();
        let out = solve_portfolio(&p).unwrap();
        let chain = Portfolio::standard();
        assert_eq!(
            out.report.iter().map(|r| r.name).collect::<Vec<_>>(),
            chain.member_names()
        );
        // fig1 is single-query single-deletion: first member wins, rest
        // not reached.
        assert_eq!(out.winner, "single_query");
        assert!(out.report[0].status.is_verified());
        assert!(out
            .report
            .iter()
            .skip(1)
            .all(|r| r.status == MemberStatus::NotReached));
    }

    #[test]
    fn solve_best_runs_everything_and_never_loses_to_solve() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let budget = Budget::unlimited();
        let chain = Portfolio::standard();
        let first = chain.solve(&p, &budget).unwrap();
        let best = chain.solve_best(&p, &Budget::unlimited()).unwrap();
        assert!(best.cost <= first.cost + 1e-9);
        assert!(!best
            .report
            .iter()
            .any(|r| r.status == MemberStatus::NotReached));
    }

    #[test]
    fn balanced_portfolio_is_verified_and_bounded_below_by_opt() {
        for p in [fig1(), star_problem(4, &[0, 2])] {
            let out = solve_portfolio_balanced(&p).unwrap();
            let opt = exact::solve_balanced(p.compiled(), ExactConfig::default()).cost;
            assert!(out.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn empty_deletions_solved_by_first_applicable_member_at_cost_zero() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let out = solve_portfolio(&p).unwrap();
        assert_eq!(out.cost, 0.0);
        assert!(out.solution.is_empty());
    }

    #[test]
    fn drained_budget_yields_budget_exhausted() {
        let p = chain_problem(6, 3, &[1, 3]);
        let budget = Budget::with_ticks(0);
        let err = Portfolio::standard().solve(&p, &budget).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExhausted { .. }));
    }

    #[test]
    fn compile_exhaustion_fails_immediately_with_typed_error() {
        let p = chain_problem(6, 3, &[1, 3]);
        // Enough for part of the compile charge but not all of it: the
        // run must fail before any member is attempted, and the reported
        // ticks must be clamped at the limit (no phantom inflation).
        let budget = Budget::with_ticks(2);
        let err = Portfolio::standard().solve(&p, &budget).unwrap_err();
        assert_eq!(err, CoreError::BudgetExhausted { ticks: 0 });
        assert!(budget.is_exhausted());
        assert_eq!(budget.used(), 0, "the refused compile charge rolls off");
    }

    #[test]
    fn post_exhaustion_members_report_zero_ticks() {
        use crate::runtime::fault::{FaultMode, FaultySolver};
        let p = chain_problem(6, 3, &[1, 3]);
        let chain = Portfolio::new(Objective::Standard)
            .with(GreedySolver)
            .with(FaultySolver::new(GreedySolver, FaultMode::ExhaustBudget))
            .with(GreedySolver);
        let out = chain.solve_best(&p, &Budget::with_ticks(10_000)).unwrap();
        assert!(out.report[0].status.is_verified());
        assert!(out.report[1].ticks > 0, "the hog did charge");
        // The member after the hog is refused at its first charge and
        // must show no phantom tick delta.
        assert!(matches!(
            out.report[2].status,
            MemberStatus::Failed {
                error: CoreError::BudgetExhausted { .. }
            }
        ));
        assert_eq!(out.report[2].ticks, 0);
        assert_eq!(out.report[2].pool_ticks, 0);
    }

    #[test]
    fn sequential_report_meters_per_member_ticks() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let out = Portfolio::standard()
            .solve_best(&p, &Budget::unlimited())
            .unwrap();
        for r in &out.report {
            // Single-handle sequential run: own meter == pool delta.
            assert_eq!(r.ticks, r.pool_ticks, "{}", r.name);
        }
    }

    #[test]
    fn racing_matches_sequential_on_easy_cases() {
        for p in [
            fig1(),
            chain_problem(8, 3, &[1, 4]),
            star_problem(4, &[0, 2]),
        ] {
            let seq = Portfolio::standard()
                .solve_best(&p, &Budget::unlimited())
                .unwrap();
            let raced = Portfolio::standard()
                .solve_racing(&p, &Budget::unlimited())
                .unwrap();
            assert!(raced.solution.is_feasible(&p));
            assert!(
                (raced.cost - seq.cost).abs() < 1e-9,
                "racing {} vs sequential {}",
                raced.cost,
                seq.cost
            );
        }
    }

    #[test]
    fn racing_leaves_the_callers_handle_usable() {
        let p = fig1();
        let budget = Budget::unlimited();
        let _ = Portfolio::standard().solve_racing(&p, &budget).unwrap();
        assert!(!budget.is_cancelled());
        assert!(budget.checkpoint().is_ok());
    }

    #[test]
    fn member_display_strings_are_informative() {
        let p = fig1();
        let out = solve_portfolio(&p).unwrap();
        let text = out.to_string();
        assert!(text.contains("winner single_query"));
        assert!(text.contains("not reached"));
    }
}
