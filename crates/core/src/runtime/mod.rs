//! The solver portfolio runtime: budgets, panic isolation, and verified
//! fallback chains over the paper's algorithm suite.
//!
//! The paper contributes a *portfolio* of algorithms with different
//! preconditions and guarantees (Algorithms 1–4, Claim 1/Lemma 1, exact
//! branch and bound); this module is the robust single entry point over
//! all of them:
//!
//! - [`Budget`] — deterministic work-tick counter plus optional
//!   wall-clock deadline on an atomic shared pool, threaded
//!   cooperatively into every hot loop (branch-and-bound nodes, simplex
//!   pivots, local-search moves); [`Budget::share`] hands out more
//!   handles on the same pool, each with its own cancellation token;
//! - [`Solver`] — one trait (`Send + Sync`) over the ten entry points in
//!   [`crate::solvers`], with [`Guarantee`] metadata;
//! - [`Portfolio`] — guarantee-ordered fallback chains with
//!   `catch_unwind` isolation around each member and mandatory
//!   verification (`is_feasible` + `verify_by_reevaluation`) before any
//!   solution is reported; [`Portfolio::solve_racing`] runs all
//!   applicable members on scoped threads with
//!   first-strongest-verified-wins cancellation;
//! - [`FaultySolver`] — fault injection used by the test suite to prove
//!   panics are contained and unverified answers never escape, on both
//!   the sequential and the racing path;
//! - [`trace`] / [`metrics`] — zero-dependency observability
//!   (`DESIGN.md` §10): attach a [`TraceSink`] to a budget with
//!   [`Budget::with_sink`] and every phase (compile, member spans,
//!   verification, budget exhaustion, racing cancellations) lands in a
//!   lock-free ring buffer as structured events, exportable as JSONL;
//!   process-wide counters and latency histograms are always on.
//!
//! ```
//! use delprop_core::runtime::{solve_portfolio, Budget, Portfolio};
//! use delprop_core::Problem;
//! use delprop_query::parse_query;
//! use delprop_relation::{tup, Database, RelationSchema, Schema};
//!
//! let schema = Schema::from_relations([
//!     RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
//!     RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
//! ]).unwrap();
//! let mut db = Database::new(schema);
//! db.insert("T1", tup!["John", "TKDE"]).unwrap();
//! db.insert("T2", tup!["TKDE", "XML", 30]).unwrap();
//! let q = parse_query("Q(x, y, z) :- T1(x, y), T2(y, z, w)")
//!     .unwrap().bind(db.schema()).unwrap();
//! let mut problem = Problem::new(db, vec![q]).unwrap();
//! problem.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
//!
//! // Unbudgeted convenience entry point:
//! let outcome = solve_portfolio(&problem)?;
//! assert!(outcome.solution.is_feasible(&problem));
//!
//! // Or bounded, degrading gracefully to the best verified fallback:
//! let budget = Budget::with_ticks(100_000);
//! let outcome = Portfolio::standard().solve(&problem, &budget)?;
//! println!("{}", outcome); // winner + per-member report
//!
//! // Or raced: every applicable member on its own thread, first
//! // strongest verifier cancelling the rest.
//! let raced = Portfolio::standard().solve_racing(&problem, &Budget::unlimited())?;
//! assert!(raced.solution.is_feasible(&problem));
//! # Ok::<(), delprop_core::CoreError>(())
//! ```

mod budget;
pub mod epoch;
mod fault;
pub mod metrics;
mod portfolio;
pub mod solver;
pub mod sync;
pub mod trace;

pub use budget::{now, Budget};
pub use epoch::{EpochCell, EpochSnapshot};
pub use fault::{FaultMode, FaultySolver};
pub use portfolio::{
    solve_portfolio, solve_portfolio_balanced, solve_portfolio_racing, MemberReport, MemberStatus,
    Portfolio, PortfolioOutcome,
};
pub use solver::{Guarantee, Solver};
pub use trace::{NoopSink, Phase, RingBufferSink, Span, TraceEvent, TraceSink};
