//! Cooperative solver budgets.
//!
//! A [`Budget`] bounds solver work two ways at once:
//!
//! - a **deterministic work-tick counter**: solvers charge ticks at
//!   well-defined checkpoints (branch-and-bound node expansions, simplex
//!   pivots, local-search move trials), so a tick limit reproduces
//!   exactly across runs and machines;
//! - an optional **wall-clock deadline**, checked only at checkpoint
//!   granularity (cooperatively — nothing is interrupted mid-pivot).
//!
//! Budgets are shared by reference down a whole portfolio run: every
//! member draws from the same pool, so a member that burns the pool
//! leaves less for the fallbacks — which is exactly the semantics a
//! latency-bound caller wants.

use crate::error::CoreError;
use std::cell::Cell;
use std::time::{Duration, Instant};

/// How many ticks may elapse between wall-clock checks. Checking
/// `Instant::now()` at every tick would dominate tight checkpoint loops.
const DEADLINE_CHECK_EVERY: u64 = 1024;

/// A cooperative work budget (tick counter + optional deadline).
#[derive(Debug, Clone)]
pub struct Budget {
    used: Cell<u64>,
    limit: Option<u64>,
    deadline: Option<Instant>,
    next_deadline_check: Cell<u64>,
    exhausted: Cell<bool>,
}

impl Budget {
    /// No limits: checkpoints never fail.
    pub fn unlimited() -> Self {
        Budget {
            used: Cell::new(0),
            limit: None,
            deadline: None,
            next_deadline_check: Cell::new(0),
            exhausted: Cell::new(false),
        }
    }

    /// A deterministic tick limit and no deadline.
    pub fn with_ticks(limit: u64) -> Self {
        Budget {
            limit: Some(limit),
            ..Budget::unlimited()
        }
    }

    /// Add a wall-clock deadline `timeout` from now. Combines with any
    /// tick limit: whichever fires first exhausts the budget.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Ticks charged so far.
    pub fn used(&self) -> u64 {
        self.used.get()
    }

    /// Remaining ticks under the tick limit (`u64::MAX` when unlimited).
    pub fn remaining(&self) -> u64 {
        match self.limit {
            Some(l) => l.saturating_sub(self.used.get()),
            None => u64::MAX,
        }
    }

    /// Whether a checkpoint has already failed on this budget.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.get()
    }

    /// Charge `n` work ticks. Fails with [`CoreError::BudgetExhausted`]
    /// once the tick limit is crossed or the deadline has passed; once
    /// failed, every later call fails too.
    pub fn charge(&self, n: u64) -> Result<(), CoreError> {
        let used = self.used.get().saturating_add(n);
        self.used.set(used);
        if self.exhausted.get() {
            return Err(self.error());
        }
        if let Some(limit) = self.limit {
            if used > limit {
                self.exhausted.set(true);
                return Err(self.error());
            }
        }
        if let Some(deadline) = self.deadline {
            if used >= self.next_deadline_check.get() {
                self.next_deadline_check.set(used + DEADLINE_CHECK_EVERY);
                if Instant::now() >= deadline {
                    self.exhausted.set(true);
                    return Err(self.error());
                }
            }
        }
        Ok(())
    }

    /// Charge a single tick — the common checkpoint call.
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        self.charge(1)
    }

    /// The error a failing checkpoint returns.
    pub fn error(&self) -> CoreError {
        CoreError::BudgetExhausted {
            ticks: self.used.get(),
        }
    }

    /// A `FnMut(u64) -> bool` view of this budget for the lower-layer
    /// solvers (`delprop_setcover::exact::solve_with_ticker`,
    /// `delprop_lp::solve_with_ticker`) that take a plain callback:
    /// returns `false` once the budget is exhausted.
    pub fn ticker(&self) -> impl FnMut(u64) -> bool + '_ {
        move |n| self.charge(n).is_ok()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.checkpoint().unwrap();
        }
        assert_eq!(b.used(), 10_000);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn tick_limit_fires_deterministically() {
        let b = Budget::with_ticks(5);
        for _ in 0..5 {
            b.checkpoint().unwrap();
        }
        let err = b.checkpoint().unwrap_err();
        assert_eq!(err, CoreError::BudgetExhausted { ticks: 6 });
        assert!(b.is_exhausted());
        // Sticky: later calls keep failing.
        assert!(b.charge(0).is_err());
    }

    #[test]
    fn remaining_counts_down() {
        let b = Budget::with_ticks(10);
        assert_eq!(b.remaining(), 10);
        b.charge(4).unwrap();
        assert_eq!(b.remaining(), 6);
        assert_eq!(Budget::unlimited().remaining(), u64::MAX);
    }

    #[test]
    fn expired_deadline_fails_at_first_check() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(0));
        assert!(b.checkpoint().is_err());
        assert!(b.is_exhausted());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let b = Budget::with_ticks(1_000_000).with_deadline(Duration::from_secs(3600));
        for _ in 0..5_000 {
            b.checkpoint().unwrap();
        }
    }

    #[test]
    fn ticker_reports_exhaustion_as_false() {
        let b = Budget::with_ticks(100);
        {
            let mut tick = b.ticker();
            assert!(tick(64));
            assert!(!tick(64)); // 128 > 100
        }
        assert!(b.is_exhausted());
    }
}
