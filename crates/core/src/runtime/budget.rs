//! Cooperative solver budgets.
//!
//! A [`Budget`] bounds solver work two ways at once:
//!
//! - a **deterministic work-tick counter**: solvers charge ticks at
//!   well-defined checkpoints (branch-and-bound node expansions, simplex
//!   pivots, local-search move trials), so a tick limit reproduces
//!   exactly across runs and machines;
//! - an optional **wall-clock deadline**, checked only at checkpoint
//!   granularity (cooperatively — nothing is interrupted mid-pivot).
//!
//! Budgets are shared down a whole portfolio run: every member draws
//! from the same pool, so a member that burns the pool leaves less for
//! the fallbacks — which is exactly the semantics a latency-bound caller
//! wants. Sharing is explicit: [`Budget::share`] hands out another
//! handle on the **same** atomic pool (the handle carries its own local
//! tick meter and its own cancellation flag). `Budget` deliberately does
//! not implement `Clone` — a clone would be ambiguous between "same
//! pool" and "forked pool", and a silently forked pool doubles the
//! budget:
//!
//! ```compile_fail
//! use delprop_core::runtime::Budget;
//! let b = Budget::with_ticks(100);
//! let _forked = b.clone(); // does not compile: use `b.share()`
//! ```
//!
//! Handles are `Send + Sync`, so racing portfolio members on separate
//! threads can each hold a share of one pool; a charge on any handle is
//! visible to all of them. Each handle also carries a **cooperative
//! cancellation token**: [`Budget::cancel`] makes every later checkpoint
//! on that handle fail with [`CoreError::Cancelled`], which is how a
//! racing run tells the losing members to unwind at their next
//! checkpoint.

use crate::error::CoreError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many ticks may elapse between wall-clock checks. Checking
/// `Instant::now()` at every tick would dominate tight checkpoint loops.
const DEADLINE_CHECK_EVERY: u64 = 1024;

/// The shared pool behind one or more [`Budget`] handles.
#[derive(Debug)]
struct Pool {
    used: AtomicU64,
    limit: Option<u64>,
    deadline: Option<Instant>,
    next_deadline_check: AtomicU64,
    exhausted: AtomicBool,
}

/// A cooperative work budget (tick counter + optional deadline).
///
/// One handle onto a shared atomic pool. [`Budget::share`] creates more
/// handles on the same pool; there is intentionally no `Clone`.
#[derive(Debug)]
pub struct Budget {
    pool: Arc<Pool>,
    /// Ticks charged successfully *through this handle* — the
    /// per-member meter the portfolio reports even when many handles
    /// race on one pool.
    local_used: AtomicU64,
    /// Cooperative cancellation token, per handle: set by
    /// [`Budget::cancel`], observed by every later [`Budget::charge`].
    cancelled: AtomicBool,
}

impl Budget {
    fn from_pool(pool: Pool) -> Self {
        Budget {
            pool: Arc::new(pool),
            local_used: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// No limits: checkpoints never fail (unless [`cancel`led](Budget::cancel)).
    pub fn unlimited() -> Self {
        Budget::from_pool(Pool {
            used: AtomicU64::new(0),
            limit: None,
            deadline: None,
            next_deadline_check: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        })
    }

    /// A deterministic tick limit and no deadline.
    pub fn with_ticks(limit: u64) -> Self {
        Budget::from_pool(Pool {
            used: AtomicU64::new(0),
            limit: Some(limit),
            deadline: None,
            next_deadline_check: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        })
    }

    /// Add a wall-clock deadline `timeout` from now. Combines with any
    /// tick limit: whichever fires first exhausts the budget.
    ///
    /// Call this before [`Budget::share`]: it requires sole ownership of
    /// the pool and panics if other handles already exist.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        let pool = Arc::get_mut(&mut self.pool)
            .expect("Budget::with_deadline must be called before Budget::share");
        pool.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Another handle on the **same** pool: charges through either
    /// handle draw down one shared tick limit. The new handle starts
    /// with a fresh local meter ([`Budget::own_used`] of 0) and its own,
    /// un-set cancellation token.
    pub fn share(&self) -> Budget {
        Budget {
            pool: Arc::clone(&self.pool),
            local_used: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Ticks charged so far on the shared pool (across all handles).
    pub fn used(&self) -> u64 {
        self.pool.used.load(Ordering::Relaxed)
    }

    /// Ticks charged successfully through *this handle* only. Equal to
    /// [`Budget::used`] when the pool has a single handle; under racing
    /// this is the per-member share of the pool.
    pub fn own_used(&self) -> u64 {
        self.local_used.load(Ordering::Relaxed)
    }

    /// Remaining ticks under the tick limit (`u64::MAX` when unlimited).
    pub fn remaining(&self) -> u64 {
        match self.pool.limit {
            Some(l) => l.saturating_sub(self.used()),
            None => u64::MAX,
        }
    }

    /// Whether a checkpoint has already failed on this pool.
    pub fn is_exhausted(&self) -> bool {
        self.pool.exhausted.load(Ordering::Acquire)
    }

    /// Cooperatively cancel **this handle**: every later charge on it
    /// fails with [`CoreError::Cancelled`]. Other handles on the same
    /// pool are unaffected — this is per-member, not pool-wide.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`Budget::cancel`] has been called on this handle.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Charge `n` work ticks. Fails with [`CoreError::BudgetExhausted`]
    /// once the tick limit is crossed or the deadline has passed, and
    /// with [`CoreError::Cancelled`] once this handle is cancelled; once
    /// failed, every later call fails too. A refused charge does **not**
    /// move the pool counter: `used()` never exceeds the tick limit.
    pub fn charge(&self, n: u64) -> Result<(), CoreError> {
        if self.is_cancelled() {
            return Err(self.error());
        }
        if self.is_exhausted() {
            return Err(self.error());
        }
        let pool = &*self.pool;
        // CAS loop: admit the charge only if it fits under the limit, so
        // a refusal leaves `used` clamped at (or below) the limit.
        let admit = pool
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                let next = used.saturating_add(n);
                match pool.limit {
                    Some(limit) if next > limit => None,
                    _ => Some(next),
                }
            });
        let used = match admit {
            Ok(prev) => prev.saturating_add(n),
            Err(_) => {
                pool.exhausted.store(true, Ordering::Release);
                return Err(self.error());
            }
        };
        self.local_used.fetch_add(n, Ordering::Relaxed);
        if let Some(deadline) = pool.deadline {
            if used >= pool.next_deadline_check.load(Ordering::Relaxed) {
                pool.next_deadline_check
                    .store(used + DEADLINE_CHECK_EVERY, Ordering::Relaxed);
                if Instant::now() >= deadline {
                    // Roll the refused work back out of both meters so a
                    // deadline-only exhaustion reports the ticks that
                    // actually ran (0 at the first checkpoint).
                    pool.used.fetch_sub(n, Ordering::Relaxed);
                    self.local_used.fetch_sub(n, Ordering::Relaxed);
                    pool.exhausted.store(true, Ordering::Release);
                    return Err(self.error());
                }
            }
        }
        Ok(())
    }

    /// Charge a single tick — the common checkpoint call.
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        self.charge(1)
    }

    /// The error a failing checkpoint returns: [`CoreError::Cancelled`]
    /// when this handle was cancelled (and the pool still has budget),
    /// otherwise [`CoreError::BudgetExhausted`].
    pub fn error(&self) -> CoreError {
        if self.is_cancelled() && !self.is_exhausted() {
            CoreError::Cancelled { ticks: self.used() }
        } else {
            CoreError::BudgetExhausted { ticks: self.used() }
        }
    }

    /// A `FnMut(u64) -> bool` view of this budget for the lower-layer
    /// solvers (`delprop_setcover::exact::solve_with_ticker`,
    /// `delprop_lp::solve_with_ticker`) that take a plain callback:
    /// returns `false` once the budget is exhausted or the handle is
    /// cancelled.
    pub fn ticker(&self) -> impl FnMut(u64) -> bool + '_ {
        move |n| self.charge(n).is_ok()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.checkpoint().unwrap();
        }
        assert_eq!(b.used(), 10_000);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn tick_limit_fires_deterministically() {
        let b = Budget::with_ticks(5);
        for _ in 0..5 {
            b.checkpoint().unwrap();
        }
        let err = b.checkpoint().unwrap_err();
        // The refused sixth tick is not recorded: `used` clamps at the
        // limit, so the error reports the work that actually ran.
        assert_eq!(err, CoreError::BudgetExhausted { ticks: 5 });
        assert_eq!(b.used(), 5);
        assert!(b.is_exhausted());
        // Sticky: later calls keep failing.
        assert!(b.charge(0).is_err());
    }

    #[test]
    fn refused_charge_does_not_inflate_used() {
        let b = Budget::with_ticks(10);
        b.charge(8).unwrap();
        assert!(b.charge(5).is_err()); // 13 > 10: refused
        assert_eq!(b.used(), 8, "refusal must not move the counter");
        assert_eq!(b.remaining(), 2);
        // Sticky exhaustion: even a fitting charge now fails, and still
        // does not move the counter.
        assert!(b.charge(1).is_err());
        assert_eq!(b.used(), 8);
    }

    #[test]
    fn remaining_counts_down() {
        let b = Budget::with_ticks(10);
        assert_eq!(b.remaining(), 10);
        b.charge(4).unwrap();
        assert_eq!(b.remaining(), 6);
        assert_eq!(Budget::unlimited().remaining(), u64::MAX);
    }

    #[test]
    fn expired_deadline_fails_at_first_check() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(0));
        let err = b.checkpoint().unwrap_err();
        // Deadline-only exhaustion reports 0 ticks: the rolled-back
        // checkpoint never ran.
        assert_eq!(err, CoreError::BudgetExhausted { ticks: 0 });
        assert!(b.is_exhausted());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let b = Budget::with_ticks(1_000_000).with_deadline(Duration::from_secs(3600));
        for _ in 0..5_000 {
            b.checkpoint().unwrap();
        }
    }

    #[test]
    fn ticker_reports_exhaustion_as_false() {
        let b = Budget::with_ticks(100);
        {
            let mut tick = b.ticker();
            assert!(tick(64));
            assert!(!tick(64)); // 64 + 64 > 100: refused
        }
        assert!(b.is_exhausted());
        assert_eq!(b.used(), 64, "the refused 64 must not be recorded");
    }

    #[test]
    fn share_draws_from_the_same_pool() {
        let a = Budget::with_ticks(10);
        let b = a.share();
        a.charge(4).unwrap();
        b.charge(4).unwrap();
        assert_eq!(a.used(), 8);
        assert_eq!(b.used(), 8);
        assert_eq!(a.remaining(), 2);
        // The pool is shared, not forked: a third charge that fits the
        // local view but not the pool fails on either handle.
        assert!(b.charge(3).is_err());
        assert!(a.is_exhausted() && b.is_exhausted());
    }

    #[test]
    fn share_meters_locally() {
        let a = Budget::with_ticks(100);
        let b = a.share();
        a.charge(30).unwrap();
        b.charge(20).unwrap();
        assert_eq!(a.own_used(), 30);
        assert_eq!(b.own_used(), 20);
        assert_eq!(a.used(), 50);
    }

    #[test]
    fn cancel_stops_checkpoints_with_typed_error() {
        let a = Budget::with_ticks(100);
        let b = a.share();
        b.charge(10).unwrap();
        b.cancel();
        let err = b.checkpoint().unwrap_err();
        assert_eq!(err, CoreError::Cancelled { ticks: 10 });
        // Cancellation is per handle: the sibling keeps running, and the
        // cancelled handle charged nothing extra.
        assert!(!a.is_cancelled());
        a.charge(10).unwrap();
        assert_eq!(a.used(), 20);
    }

    #[test]
    fn exhaustion_wins_over_cancellation_in_error() {
        let b = Budget::with_ticks(5);
        assert!(b.charge(6).is_err());
        b.cancel();
        assert!(matches!(b.error(), CoreError::BudgetExhausted { .. }));
    }

    #[test]
    fn shared_charges_are_atomic_across_threads() {
        let a = Budget::with_ticks(1_000_000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = a.share();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        h.checkpoint().unwrap();
                    }
                    assert_eq!(h.own_used(), 10_000);
                });
            }
        });
        assert_eq!(a.used(), 40_000, "no tick lost or duplicated");
        assert!(!a.is_exhausted());
    }
}
