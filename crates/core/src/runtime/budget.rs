//! Cooperative solver budgets.
//!
//! A [`Budget`] bounds solver work two ways at once:
//!
//! - a **deterministic work-tick counter**: solvers charge ticks at
//!   well-defined checkpoints (branch-and-bound node expansions, simplex
//!   pivots, local-search move trials), so a tick limit reproduces
//!   exactly across runs and machines;
//! - an optional **wall-clock deadline**, checked only at checkpoint
//!   granularity (cooperatively — nothing is interrupted mid-pivot).
//!
//! Budgets are shared down a whole portfolio run: every member draws
//! from the same pool, so a member that burns the pool leaves less for
//! the fallbacks — which is exactly the semantics a latency-bound caller
//! wants. Sharing is explicit: [`Budget::share`] hands out another
//! handle on the **same** atomic pool (the handle carries its own local
//! tick meter and its own cancellation flag). `Budget` deliberately does
//! not implement `Clone` — a clone would be ambiguous between "same
//! pool" and "forked pool", and a silently forked pool doubles the
//! budget:
//!
//! ```compile_fail
//! use delprop_core::runtime::Budget;
//! let b = Budget::with_ticks(100);
//! let _forked = b.clone(); // does not compile: use `b.share()`
//! ```
//!
//! Handles are `Send + Sync`, so racing portfolio members on separate
//! threads can each hold a share of one pool; a charge on any handle is
//! visible to all of them. Each handle also carries a **cooperative
//! cancellation token**: [`Budget::cancel`] makes every later checkpoint
//! on that handle fail with [`CoreError::Cancelled`], which is how a
//! racing run tells the losing members to unwind at their next
//! checkpoint ([`Budget::cancel_with_cause`] additionally records *who*
//! requested the cancellation, so traces can name the winner).
//!
//! The pool can also carry a [`TraceSink`] ([`Budget::with_sink`]):
//! every handle then reports batched tick checkpoints, spans, and
//! events into it — tracing rides the existing budget threading, with
//! no global state, and costs a single `Option` check when off.

use super::metrics;
use super::sync::{AtomicBool, AtomicU64, Ordering};
use super::trace::{self, Kind, Phase, Span, TraceEvent, TraceSink};
use crate::error::CoreError;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The runtime's only wall-clock read. Everything in `delprop-core`
/// that needs "now" — deadlines here, span and member timings in
/// `trace.rs`/`portfolio.rs`, the IR compile histogram — goes through
/// this one choke point, and `cargo run -p xtask -- lint` forbids
/// `Instant::now` anywhere else in the crate. One sanctioned call site
/// keeps wall-clock out of solver logic (work ticks stay the only
/// determinism-relevant meter) and gives a future virtual clock a
/// single seam. Public (re-exported as `runtime::now`) so downstream
/// crates with legitimate wall-clock needs — the serving daemon's
/// deadline arithmetic, request latency metering — ride the same seam
/// instead of growing their own `Instant::now` call sites.
pub fn now() -> Instant {
    Instant::now()
}

/// How many ticks may elapse between wall-clock checks. Checking
/// `Instant::now()` at every tick would dominate tight checkpoint loops.
const DEADLINE_CHECK_EVERY: u64 = 1024;

/// Granularity of per-handle tick trace events and of the
/// `budget.ticks` metric: one batched record per this many local ticks.
const TRACE_TICK_BATCH: u64 = 1024;

/// How many charge-free [`Budget::poll`]s may elapse between wall-clock
/// checks on a deadline pool. Polls are cheaper than charges (no CAS on
/// the shared counter), so they can afford a tighter clock cadence.
const POLL_DEADLINE_CHECK_EVERY: u64 = 64;

/// The shared pool behind one or more [`Budget`] handles.
struct Pool {
    used: AtomicU64,
    limit: Option<u64>,
    deadline: Option<Instant>,
    next_deadline_check: AtomicU64,
    exhausted: AtomicBool,
    /// Pool-wide cooperative cancellation: set by [`Budget::cancel_all`]
    /// on any handle, observed by every handle's checkpoints. This is
    /// the request-scoped kill switch the serving layer pulls on client
    /// disconnect or daemon shutdown — per-handle [`Budget::cancel`]
    /// only stops one member.
    cancelled: AtomicBool,
    /// Who asked for the pool-wide cancellation; set at most once.
    cancel_cause: OnceLock<&'static str>,
    /// Optional trace sink shared by every handle on this pool.
    sink: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("used", &self.used.load(Ordering::Relaxed))
            .field("limit", &self.limit)
            .field("deadline", &self.deadline)
            .field("exhausted", &self.exhausted.load(Ordering::Relaxed))
            .field("traced", &self.sink.is_some())
            .finish()
    }
}

/// A cooperative work budget (tick counter + optional deadline).
///
/// One handle onto a shared atomic pool. [`Budget::share`] creates more
/// handles on the same pool; there is intentionally no `Clone`.
#[derive(Debug)]
pub struct Budget {
    pool: Arc<Pool>,
    /// Ticks charged successfully *through this handle* — the
    /// per-member meter the portfolio reports even when many handles
    /// race on one pool.
    local_used: AtomicU64,
    /// Cooperative cancellation token, per handle: set by
    /// [`Budget::cancel`], observed by every later [`Budget::charge`].
    cancelled: AtomicBool,
    /// Trace attribution for events recorded through this handle; set
    /// by [`Budget::share_labeled`] (the racing portfolio labels each
    /// member's handle with the member name).
    label: &'static str,
    /// Who asked for the cancellation (the winning member's name on the
    /// racing path); set at most once by [`Budget::cancel_with_cause`].
    cancel_cause: OnceLock<&'static str>,
    /// Charge-free [`Budget::poll`] calls through this handle — a
    /// per-handle rate limiter for the poll-path clock reads.
    polls: AtomicU64,
}

impl Budget {
    fn from_pool(pool: Pool) -> Self {
        Budget {
            pool: Arc::new(pool),
            local_used: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            label: "",
            cancel_cause: OnceLock::new(),
            polls: AtomicU64::new(0),
        }
    }

    /// No limits: checkpoints never fail (unless [`cancel`led](Budget::cancel)).
    pub fn unlimited() -> Self {
        Budget::from_pool(Pool {
            used: AtomicU64::new(0),
            limit: None,
            deadline: None,
            next_deadline_check: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            cancel_cause: OnceLock::new(),
            sink: None,
        })
    }

    /// A deterministic tick limit and no deadline.
    pub fn with_ticks(limit: u64) -> Self {
        Budget::from_pool(Pool {
            used: AtomicU64::new(0),
            limit: Some(limit),
            deadline: None,
            next_deadline_check: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            cancel_cause: OnceLock::new(),
            sink: None,
        })
    }

    /// Add a wall-clock deadline `timeout` from now. Combines with any
    /// tick limit: whichever fires first exhausts the budget.
    ///
    /// Call this before [`Budget::share`]: it requires sole ownership of
    /// the pool and panics if other handles already exist.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        let pool = Arc::get_mut(&mut self.pool)
            .expect("Budget::with_deadline must be called before Budget::share");
        pool.deadline = Some(now() + timeout);
        self
    }

    /// Attach a [`TraceSink`] to the pool: every handle (this one and
    /// all later [`Budget::share`]s) records batched tick checkpoints,
    /// spans, and events into it.
    ///
    /// Call this before [`Budget::share`]: it requires sole ownership of
    /// the pool and panics if other handles already exist.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        let pool = Arc::get_mut(&mut self.pool)
            .expect("Budget::with_sink must be called before Budget::share");
        pool.sink = Some(sink);
        self
    }

    /// Another handle on the **same** pool: charges through either
    /// handle draw down one shared tick limit. The new handle starts
    /// with a fresh local meter ([`Budget::own_used`] of 0), its own,
    /// un-set cancellation token, and the parent's trace label.
    pub fn share(&self) -> Budget {
        self.share_labeled(self.label)
    }

    /// [`Budget::share`] with a trace attribution label: events recorded
    /// through the new handle carry `label` as their member name. The
    /// racing portfolio labels each member's handle this way so span
    /// trees separate cleanly per member.
    pub fn share_labeled(&self, label: &'static str) -> Budget {
        Budget {
            pool: Arc::clone(&self.pool),
            local_used: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            label,
            cancel_cause: OnceLock::new(),
            polls: AtomicU64::new(0),
        }
    }

    /// Ticks charged so far on the shared pool (across all handles).
    pub fn used(&self) -> u64 {
        // Ordering: Relaxed. `used` is a plain counter — no other memory
        // is published through it, and the clamp-at-limit invariant
        // comes from CAS atomicity in `charge`, not from ordering.
        self.pool.used.load(Ordering::Relaxed)
    }

    /// Ticks charged successfully through *this handle* only. Equal to
    /// [`Budget::used`] when the pool has a single handle; under racing
    /// this is the per-member share of the pool.
    pub fn own_used(&self) -> u64 {
        // Ordering: Relaxed — same plain-counter reasoning as `used`,
        // and `local_used` is only ever written through this handle.
        self.local_used.load(Ordering::Relaxed)
    }

    /// Remaining ticks under the tick limit (`u64::MAX` when unlimited).
    pub fn remaining(&self) -> u64 {
        match self.pool.limit {
            Some(l) => l.saturating_sub(self.used()),
            None => u64::MAX,
        }
    }

    /// Whether a checkpoint has already failed on this pool.
    pub fn is_exhausted(&self) -> bool {
        // Ordering: Acquire, pairing with the Release swap in
        // `mark_exhausted` — a thread that observes `true` also
        // observes the deadline rollback `fetch_sub`s that preceded the
        // flag flip, so `used()` never transiently includes rolled-back
        // ticks on the observer's side.
        self.pool.exhausted.load(Ordering::Acquire)
    }

    /// Cooperatively cancel **this handle**: every later charge on it
    /// fails with [`CoreError::Cancelled`]. Other handles on the same
    /// pool are unaffected — this is per-member, not pool-wide.
    pub fn cancel(&self) {
        // Ordering: Release (downgraded from a gratuitous AcqRel during
        // the model-checker port; this side publishes, it reads nothing
        // through the flag). Pairs with the Acquire load in
        // `is_cancelled` so the `cancel_cause` recorded just before
        // this swap in `cancel_with_cause` is visible to any thread
        // that observed the cancellation.
        if !self.cancelled.swap(true, Ordering::Release) {
            metrics::CANCELLATIONS.inc();
        }
    }

    /// [`Budget::cancel`] plus attribution: records `cause` (the
    /// cancelling member's name, on the racing path) so the unwinding
    /// side can report *why* it was stopped. The first cause sticks;
    /// later calls only cancel.
    pub fn cancel_with_cause(&self, cause: &'static str) {
        let _ = self.cancel_cause.set(cause);
        self.cancel();
    }

    /// Cooperatively cancel **every handle on this pool**: all later
    /// checkpoints — through this handle, its siblings, and any future
    /// [`Budget::share`] — fail with [`CoreError::Cancelled`]. This is
    /// the request-scoped kill switch: the serving daemon pulls it when
    /// a client disconnects or the process shuts down, stopping a whole
    /// racing portfolio at once where [`Budget::cancel`] would stop only
    /// one member's handle.
    pub fn cancel_all(&self) {
        // Ordering: Release, pairing with the Acquire load in
        // `is_cancelled` — same monotone sticky-flag protocol as the
        // per-handle token, and the same publish-only reasoning.
        if !self.pool.cancelled.swap(true, Ordering::Release) {
            metrics::CANCELLATIONS.inc();
            self.trace(Phase::Cancel, Kind::Event, "cancel_all", self.used());
        }
    }

    /// [`Budget::cancel_all`] plus attribution (see
    /// [`Budget::cancel_with_cause`]); the first cause sticks.
    pub fn cancel_all_with_cause(&self, cause: &'static str) {
        let _ = self.pool.cancel_cause.set(cause);
        self.cancel_all();
    }

    /// Whether [`Budget::cancel`] has been called on this handle, or
    /// [`Budget::cancel_all`] on any handle of the pool.
    pub fn is_cancelled(&self) -> bool {
        // Ordering: Acquire, pairing with the Release swaps in `cancel`
        // and `cancel_all` (see there); makes the cancel cause visible
        // once `true` is observed. Monotone: `true` is sticky, so a
        // stale `false` only delays the next checkpoint's refusal,
        // never un-cancels.
        self.cancelled.load(Ordering::Acquire) || self.pool.cancelled.load(Ordering::Acquire)
    }

    /// The cause recorded by [`Budget::cancel_with_cause`] on this
    /// handle, falling back to the pool-wide cause recorded by
    /// [`Budget::cancel_all_with_cause`], if any.
    pub fn cancel_cause(&self) -> Option<&'static str> {
        self.cancel_cause
            .get()
            .or_else(|| self.pool.cancel_cause.get())
            .copied()
    }

    /// Charge `n` work ticks. Fails with [`CoreError::BudgetExhausted`]
    /// once the tick limit is crossed or the deadline has passed, and
    /// with [`CoreError::Cancelled`] once this handle is cancelled; once
    /// failed, every later call fails too. A refused charge does **not**
    /// move the pool counter: `used()` never exceeds the tick limit.
    pub fn charge(&self, n: u64) -> Result<(), CoreError> {
        if self.is_cancelled() {
            return Err(self.error());
        }
        if self.is_exhausted() {
            return Err(self.error());
        }
        let pool = &*self.pool;
        // CAS loop: admit the charge only if it fits under the limit, so
        // a refusal leaves `used` clamped at (or below) the limit.
        //
        // Ordering: Relaxed on both the RMW and the reload leg. The
        // admit decision needs only the atomicity of the CAS itself
        // (read-modify-write on one location); no other memory is
        // published through `used`, so stronger orderings would buy
        // nothing. The model suite (`crates/core/tests/model.rs`)
        // checks the clamp and no-lost-tick invariants under every
        // bounded interleaving.
        #[cfg(not(delprop_model_bug))]
        let admit = pool
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                let next = used.saturating_add(n);
                match pool.limit {
                    Some(limit) if next > limit => None,
                    _ => Some(next),
                }
            });
        // The pre-PR 3 over-accounting bug, re-injected for the model
        // checker's regression test (`model_bug.rs`): the admit check
        // and the counter update are separate atomic operations, so two
        // racing handles can both pass the check against the same stale
        // `used` and one increment overwrites the other — ticks vanish
        // from the pool meter and the limit can be oversubscribed. Only
        // compiled under `--cfg delprop_model_bug`; never in real builds.
        #[cfg(delprop_model_bug)]
        let admit: Result<u64, u64> = {
            let used = pool.used.load(Ordering::Relaxed);
            let next = used.saturating_add(n);
            match pool.limit {
                Some(limit) if next > limit => Err(used),
                _ => {
                    pool.used.store(next, Ordering::Relaxed);
                    Ok(used)
                }
            }
        };
        let used = match admit {
            Ok(prev) => prev.saturating_add(n),
            Err(_) => {
                self.mark_exhausted();
                return Err(self.error());
            }
        };
        // Ordering: Relaxed — single-writer counter (this handle), read
        // back only for reporting.
        let local_prev = self.local_used.fetch_add(n, Ordering::Relaxed);
        if pool.sink.is_some()
            && local_prev / TRACE_TICK_BATCH != (local_prev + n) / TRACE_TICK_BATCH
        {
            // Batched checkpoint record: one event per TRACE_TICK_BATCH
            // local ticks, carrying the cumulative local count — cheap
            // enough for pivot/node-expansion loops, dense enough to see
            // where a member's ticks went.
            metrics::BUDGET_TICKS.add(TRACE_TICK_BATCH);
            self.trace(Phase::Budget, Kind::Count, "", local_prev + n);
        }
        if let Some(deadline) = pool.deadline {
            // Ordering: Relaxed on both the throttle load and store.
            // `next_deadline_check` is a heuristic rate limiter — racing
            // handles may each schedule their own next check, which only
            // means the clock is read a little more or less often than
            // every DEADLINE_CHECK_EVERY ticks; exhaustion correctness
            // never depends on it.
            if used >= pool.next_deadline_check.load(Ordering::Relaxed) {
                pool.next_deadline_check
                    .store(used + DEADLINE_CHECK_EVERY, Ordering::Relaxed);
                if now() >= deadline {
                    // Roll the refused work back out of both meters so a
                    // deadline-only exhaustion reports the ticks that
                    // actually ran (0 at the first checkpoint).
                    //
                    // Ordering: Relaxed — the rollback is made visible
                    // to exhaustion observers by the Release swap in
                    // `mark_exhausted` below, sequenced after it.
                    pool.used.fetch_sub(n, Ordering::Relaxed);
                    self.local_used.fetch_sub(n, Ordering::Relaxed);
                    self.mark_exhausted();
                    return Err(self.error());
                }
            }
        }
        Ok(())
    }

    /// Flip the sticky exhaustion flag, counting and tracing the first
    /// transition only.
    fn mark_exhausted(&self) {
        // Ordering: Release (downgraded from a gratuitous AcqRel during
        // the model-checker port; nothing is read through the flag on
        // this side). Pairs with the Acquire load in `is_exhausted`, so
        // observers of `true` also see the deadline rollback performed
        // just before this swap. The swap's atomicity alone guarantees
        // the once-only metrics/trace transition.
        if !self.pool.exhausted.swap(true, Ordering::Release) {
            metrics::BUDGET_EXHAUSTIONS.inc();
            self.trace(Phase::Budget, Kind::Event, "exhausted", self.used());
        }
    }

    /// Charge a single tick — the common checkpoint call.
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        self.charge(1)
    }

    /// A **charge-free** checkpoint: observe cancellation (handle and
    /// pool-wide), sticky exhaustion, and the wall-clock deadline
    /// without drawing down the tick pool. For wait loops that do no
    /// work — a stalled member spinning, the daemon parking a request —
    /// where charging would either drain the shared pool at CPU speed
    /// or (under an unlimited pool) never observe the deadline at all.
    ///
    /// The clock is read only every `POLL_DEADLINE_CHECK_EVERY` calls
    /// per handle, so polling stays cheap in tight loops.
    pub fn poll(&self) -> Result<(), CoreError> {
        if self.is_cancelled() || self.is_exhausted() {
            return Err(self.error());
        }
        if let Some(deadline) = self.pool.deadline {
            // Ordering: Relaxed — `polls` is a per-handle rate limiter
            // with no cross-location invariants; a racing reader at
            // worst checks the clock one call early or late.
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(POLL_DEADLINE_CHECK_EVERY) && now() >= deadline {
                // Nothing was charged, so there is nothing to roll
                // back; just trip the sticky flag.
                self.mark_exhausted();
                return Err(self.error());
            }
        }
        Ok(())
    }

    /// The error a failing checkpoint returns: [`CoreError::Cancelled`]
    /// when this handle was cancelled (and the pool still has budget),
    /// otherwise [`CoreError::BudgetExhausted`].
    pub fn error(&self) -> CoreError {
        if self.is_cancelled() && !self.is_exhausted() {
            CoreError::Cancelled { ticks: self.used() }
        } else {
            CoreError::BudgetExhausted { ticks: self.used() }
        }
    }

    /// A `FnMut(u64) -> bool` view of this budget for the lower-layer
    /// solvers (`delprop_setcover::exact::solve_with_ticker`,
    /// `delprop_lp::solve_with_ticker`) that take a plain callback:
    /// returns `false` once the budget is exhausted or the handle is
    /// cancelled.
    pub fn ticker(&self) -> impl FnMut(u64) -> bool + '_ {
        move |n| self.charge(n).is_ok()
    }

    // --- Tracing ---------------------------------------------------------

    /// Whether a [`TraceSink`] is attached to this handle's pool.
    pub fn has_sink(&self) -> bool {
        self.pool.sink.is_some()
    }

    /// This handle's trace attribution label (empty unless created by
    /// [`Budget::share_labeled`]).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Record one trace event attributed to this handle's label. A
    /// single `Option` check — and nothing else — when no sink is
    /// attached.
    pub fn trace(&self, phase: Phase, kind: Kind, detail: &'static str, value: u64) {
        self.trace_as(self.label, phase, kind, detail, value);
    }

    /// [`Budget::trace`] with an explicit member attribution (used by
    /// spans that out-live or pre-date the labelled handle).
    pub(crate) fn trace_as(
        &self,
        member: &'static str,
        phase: Phase,
        kind: Kind,
        detail: &'static str,
        value: u64,
    ) {
        if let Some(sink) = &self.pool.sink {
            sink.record(TraceEvent {
                seq: 0,
                micros: 0,
                thread: trace::thread_id(),
                phase,
                kind,
                member: if member.is_empty() {
                    self.label
                } else {
                    member
                },
                detail,
                value,
            });
        }
    }

    /// Open a [`Span`] (start event now, end event with elapsed µs on
    /// drop). `member` overrides the handle label when non-empty. Inert
    /// when no sink is attached.
    pub fn span(&self, phase: Phase, member: &'static str) -> Span<'_> {
        Span::new(
            self,
            phase,
            if member.is_empty() {
                self.label
            } else {
                member
            },
        )
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.checkpoint().unwrap();
        }
        assert_eq!(b.used(), 10_000);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn tick_limit_fires_deterministically() {
        let b = Budget::with_ticks(5);
        for _ in 0..5 {
            b.checkpoint().unwrap();
        }
        let err = b.checkpoint().unwrap_err();
        // The refused sixth tick is not recorded: `used` clamps at the
        // limit, so the error reports the work that actually ran.
        assert_eq!(err, CoreError::BudgetExhausted { ticks: 5 });
        assert_eq!(b.used(), 5);
        assert!(b.is_exhausted());
        // Sticky: later calls keep failing.
        assert!(b.charge(0).is_err());
    }

    #[test]
    fn refused_charge_does_not_inflate_used() {
        let b = Budget::with_ticks(10);
        b.charge(8).unwrap();
        assert!(b.charge(5).is_err()); // 13 > 10: refused
        assert_eq!(b.used(), 8, "refusal must not move the counter");
        assert_eq!(b.remaining(), 2);
        // Sticky exhaustion: even a fitting charge now fails, and still
        // does not move the counter.
        assert!(b.charge(1).is_err());
        assert_eq!(b.used(), 8);
    }

    #[test]
    fn remaining_counts_down() {
        let b = Budget::with_ticks(10);
        assert_eq!(b.remaining(), 10);
        b.charge(4).unwrap();
        assert_eq!(b.remaining(), 6);
        assert_eq!(Budget::unlimited().remaining(), u64::MAX);
    }

    #[test]
    fn expired_deadline_fails_at_first_check() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(0));
        let err = b.checkpoint().unwrap_err();
        // Deadline-only exhaustion reports 0 ticks: the rolled-back
        // checkpoint never ran.
        assert_eq!(err, CoreError::BudgetExhausted { ticks: 0 });
        assert!(b.is_exhausted());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let b = Budget::with_ticks(1_000_000).with_deadline(Duration::from_secs(3600));
        for _ in 0..5_000 {
            b.checkpoint().unwrap();
        }
    }

    #[test]
    fn ticker_reports_exhaustion_as_false() {
        let b = Budget::with_ticks(100);
        {
            let mut tick = b.ticker();
            assert!(tick(64));
            assert!(!tick(64)); // 64 + 64 > 100: refused
        }
        assert!(b.is_exhausted());
        assert_eq!(b.used(), 64, "the refused 64 must not be recorded");
    }

    #[test]
    fn share_draws_from_the_same_pool() {
        let a = Budget::with_ticks(10);
        let b = a.share();
        a.charge(4).unwrap();
        b.charge(4).unwrap();
        assert_eq!(a.used(), 8);
        assert_eq!(b.used(), 8);
        assert_eq!(a.remaining(), 2);
        // The pool is shared, not forked: a third charge that fits the
        // local view but not the pool fails on either handle.
        assert!(b.charge(3).is_err());
        assert!(a.is_exhausted() && b.is_exhausted());
    }

    #[test]
    fn share_meters_locally() {
        let a = Budget::with_ticks(100);
        let b = a.share();
        a.charge(30).unwrap();
        b.charge(20).unwrap();
        assert_eq!(a.own_used(), 30);
        assert_eq!(b.own_used(), 20);
        assert_eq!(a.used(), 50);
    }

    #[test]
    fn cancel_stops_checkpoints_with_typed_error() {
        let a = Budget::with_ticks(100);
        let b = a.share();
        b.charge(10).unwrap();
        b.cancel();
        let err = b.checkpoint().unwrap_err();
        assert_eq!(err, CoreError::Cancelled { ticks: 10 });
        // Cancellation is per handle: the sibling keeps running, and the
        // cancelled handle charged nothing extra.
        assert!(!a.is_cancelled());
        a.charge(10).unwrap();
        assert_eq!(a.used(), 20);
    }

    #[test]
    fn cancel_all_stops_every_handle_on_the_pool() {
        let a = Budget::with_ticks(100);
        let b = a.share_labeled("member_b");
        let c = a.share_labeled("member_c");
        b.charge(5).unwrap();
        // Pool-wide cancel through one sibling reaches them all — and
        // handles shared *after* the cancel, too.
        c.cancel_all_with_cause("deadline");
        assert!(a.is_cancelled() && b.is_cancelled() && c.is_cancelled());
        assert!(a.share().is_cancelled());
        let err = b.checkpoint().unwrap_err();
        assert_eq!(err, CoreError::Cancelled { ticks: 5 });
        assert_eq!(a.cancel_cause(), Some("deadline"));
        // A later per-handle cause still wins for that handle.
        b.cancel_with_cause("winner");
        assert_eq!(b.cancel_cause(), Some("winner"));
        assert_eq!(c.cancel_cause(), Some("deadline"));
    }

    #[test]
    fn per_handle_cancel_still_spares_siblings() {
        let a = Budget::with_ticks(100);
        let b = a.share();
        b.cancel();
        assert!(!a.is_cancelled(), "handle cancel must stay per-handle");
        a.charge(10).unwrap();
    }

    #[test]
    fn poll_is_charge_free_and_observes_cancellation() {
        let a = Budget::with_ticks(10);
        let b = a.share();
        for _ in 0..1_000 {
            b.poll().unwrap();
        }
        assert_eq!(a.used(), 0, "poll must never draw down the pool");
        a.cancel_all();
        let err = b.poll().unwrap_err();
        assert_eq!(err, CoreError::Cancelled { ticks: 0 });
    }

    #[test]
    fn poll_observes_an_expired_deadline() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(0));
        // The very first poll reads the clock (poll count 0 hits the
        // rate-limiter's check phase) and trips sticky exhaustion.
        let err = b.poll().unwrap_err();
        assert_eq!(err, CoreError::BudgetExhausted { ticks: 0 });
        assert!(b.is_exhausted());
    }

    #[test]
    fn poll_observes_sticky_exhaustion() {
        let b = Budget::with_ticks(1);
        b.poll().unwrap();
        assert!(b.charge(2).is_err());
        assert!(matches!(
            b.poll().unwrap_err(),
            CoreError::BudgetExhausted { .. }
        ));
    }

    #[test]
    fn exhaustion_wins_over_cancellation_in_error() {
        let b = Budget::with_ticks(5);
        assert!(b.charge(6).is_err());
        b.cancel();
        assert!(matches!(b.error(), CoreError::BudgetExhausted { .. }));
    }

    #[test]
    fn shared_charges_are_atomic_across_threads() {
        // Miri runs every interleaving step interpreted; shrink the
        // stress volume so the job finishes while still crossing the
        // TRACE_TICK_BATCH boundary logic.
        const THREADS: u64 = if cfg!(miri) { 2 } else { 4 };
        const PER_THREAD: u64 = if cfg!(miri) { 256 } else { 10_000 };
        let a = Budget::with_ticks(1_000_000);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let h = a.share();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        h.checkpoint().unwrap();
                    }
                    assert_eq!(h.own_used(), PER_THREAD);
                });
            }
        });
        assert_eq!(a.used(), THREADS * PER_THREAD, "no tick lost or duplicated");
        assert!(!a.is_exhausted());
    }

    use super::super::trace::RingBufferSink;

    #[test]
    fn sink_records_batched_tick_events() {
        let ring = Arc::new(RingBufferSink::with_capacity(64));
        let b = Budget::with_ticks(10_000).with_sink(ring.clone());
        for _ in 0..2_050 {
            b.checkpoint().unwrap();
        }
        let ticks: Vec<_> = ring
            .snapshot()
            .into_iter()
            .filter(|e| e.phase == Phase::Budget && e.kind == Kind::Count)
            .collect();
        // One batched event per TRACE_TICK_BATCH crossing: at 1024, 2048.
        assert_eq!(ticks.len(), 2);
        assert_eq!(ticks[0].value, 1024);
        assert_eq!(ticks[1].value, 2048);
    }

    #[test]
    fn exhaustion_traces_once() {
        let ring = Arc::new(RingBufferSink::with_capacity(64));
        let b = Budget::with_ticks(5).with_sink(ring.clone());
        assert!(b.charge(6).is_err());
        assert!(b.charge(1).is_err());
        let exhausted: Vec<_> = ring
            .snapshot()
            .into_iter()
            .filter(|e| e.detail == "exhausted")
            .collect();
        assert_eq!(exhausted.len(), 1, "sticky exhaustion traces once");
        assert_eq!(exhausted[0].value, 0, "the refused charge never ran");
    }

    #[test]
    fn labels_and_cancel_cause_propagate() {
        let ring = Arc::new(RingBufferSink::with_capacity(64));
        let root = Budget::unlimited().with_sink(ring.clone());
        assert!(root.has_sink());
        let h = root.share_labeled("member_a");
        assert_eq!(h.label(), "member_a");
        assert_eq!(h.share().label(), "member_a", "plain share inherits");
        h.trace(Phase::Cancel, Kind::Event, "stopped", 7);
        h.cancel_with_cause("member_b");
        assert!(h.is_cancelled());
        assert_eq!(h.cancel_cause(), Some("member_b"));
        h.cancel_with_cause("member_c");
        assert_eq!(h.cancel_cause(), Some("member_b"), "first cause sticks");
        assert!(ring
            .snapshot()
            .iter()
            .any(|e| e.member == "member_a" && e.detail == "stopped" && e.value == 7));
    }

    #[test]
    fn spans_record_start_and_end() {
        let ring = Arc::new(RingBufferSink::with_capacity(64));
        let b = Budget::unlimited().with_sink(ring.clone());
        let span = b.span(Phase::Simplex, "lp");
        span.end_with("done");
        // Without a sink a span is inert and must not record anywhere.
        Budget::unlimited()
            .span(Phase::Verify, "x")
            .end_with("drop");
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, Kind::SpanStart);
        assert_eq!(evs[0].member, "lp");
        assert_eq!(evs[1].kind, Kind::SpanEnd);
        assert_eq!(evs[1].detail, "done");
    }
}
