//! The repo's single gateway to atomics and threads.
//!
//! Every atomic type, fence, spawn, and yield the runtime uses is
//! imported from here — never from `std::sync::atomic` or
//! `std::thread` directly (`cargo run -p xtask -- lint` enforces this).
//! The facade has two personalities:
//!
//! - **Normal builds** (`cfg(not(delprop_model))`): zero-cost
//!   re-exports of the `std` primitives. Nothing changes at runtime;
//!   the facade compiles away entirely.
//! - **Model builds** (`RUSTFLAGS="--cfg delprop_model"`): re-exports of
//!   the instrumented primitives in [`delprop_modelcheck`], which turn
//!   every atomic operation, spawn, join, and yield into a scheduling
//!   point of a deterministic scheduler. `delprop_modelcheck::explore`
//!   then runs the code under bounded-exhaustive or seeded-random
//!   schedules and reports failing interleavings as replayable seeds
//!   (see `crates/core/tests/model.rs` and DESIGN.md §11).
//!
//! The two personalities expose the *same* API surface, so code written
//! against the facade needs no `cfg` of its own. The modeled subset is
//! deliberately small — `AtomicU64`, `AtomicUsize`, `AtomicBool`,
//! `Ordering`, `fence`, `spin_loop`, and scoped/detached spawning —
//! because that is the full concurrency vocabulary of the runtime;
//! widening the facade is how new primitives buy into model coverage.
//!
//! What the model does **not** cover: weak-memory reorderings (the
//! scheduler is sequentially consistent) and data races on non-atomic
//! memory. Those are the Miri and ThreadSanitizer CI jobs' half of the
//! contract; the `Ordering` arguments written at facade call sites are
//! exercised by those jobs and by normal builds, not by the model.

#[cfg(not(delprop_model))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};

#[cfg(delprop_model)]
pub use delprop_modelcheck::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};

// `Ordering` is plain data (no operations to instrument) and identical
// in both personalities.
pub use std::sync::atomic::Ordering;

/// Spin-loop hint: [`std::hint::spin_loop`] in normal builds; under the
/// model, a *voluntary* scheduling point that deschedules the spinner
/// whenever any other thread can run (which is what keeps bounded
/// exhaustive exploration finite on spin-wait protocols).
pub fn spin_loop() {
    #[cfg(not(delprop_model))]
    std::hint::spin_loop();
    #[cfg(delprop_model)]
    delprop_modelcheck::spin_loop();
}

/// Available hardware parallelism, for sizing worker pools built on the
/// facade (the shard scheduler). Normal builds ask the OS; under the
/// model it is a fixed 2 so bounded-exhaustive exploration stays finite
/// and deterministic regardless of the host machine.
pub fn available_parallelism() -> usize {
    #[cfg(not(delprop_model))]
    {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    #[cfg(delprop_model)]
    {
        2
    }
}

/// Thread spawn/yield points, same two personalities as the atomics.
pub mod thread {
    #[cfg(not(delprop_model))]
    pub use std::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

    #[cfg(delprop_model)]
    pub use delprop_modelcheck::thread::{
        scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
    };
}
