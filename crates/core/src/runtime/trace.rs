//! Zero-dependency, thread-safe tracing for the solver runtime.
//!
//! The portfolio races ten solvers on a shared atomic [`Budget`]; when a
//! member loses, stalls, or regresses, the final `MemberReport` alone
//! does not explain *where* the ticks went. This module adds a
//! [`TraceSink`] trait with two built-in implementations —
//! [`NoopSink`] (the default: tracing off, zero overhead) and
//! [`RingBufferSink`] (a lock-free, overwrite-on-wrap MPMC ring) — plus
//! the [`TraceEvent`] record, the [`Span`] guard, and a JSONL exporter
//! for `artifacts/TRACE_*.jsonl` dumps.
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies.** The workspace builds `--offline` with an
//!    empty registry; everything here is facade atomics
//!    (`runtime::sync`) over `std`.
//! 2. **Off means off.** A budget without a sink never constructs an
//!    event: every trace call starts with one `Option` check on the
//!    shared pool. The EX-OBS experiment holds the ring-buffer sink to
//!    <3% overhead on EX-P1 and the no-op sink to ~0%.
//! 3. **Never block a solver.** [`RingBufferSink::record`] is wait-free
//!    in the common case (one `fetch_add` + one CAS); under pathological
//!    contention on a single slot it drops the event rather than spin
//!    forever, and counts the drop.
//!
//! Events are attributed to a *member* (the portfolio member name, or a
//! component name like `"ir"`), carry a [`Phase`] mapping onto the
//! paper's algorithm phases (compile, simplex pivots for the Algorithm 3
//! LP, branch-and-bound nodes for the exact baseline, local-search
//! rounds, verification, cancellation), and a monotone per-sink `seq`
//! that makes the interleaving reconstructible after the fact.

use super::budget::{self, Budget};
use super::sync::{self, fence, AtomicU64, Ordering};
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::time::Instant;

/// Which runtime phase an event belongs to.
///
/// The variants mirror the paper's moving parts: `Compile` is the IR
/// build (DESIGN.md §9), `Simplex` batches pivots inside the
/// Algorithm 3 LP relaxation, `BranchBound` batches node expansions in
/// the exact baseline, `LocalSearch` counts improvement rounds,
/// `Verify` is the mandatory re-evaluation gate, and `Cancel` marks a
/// racing member being stopped by a stronger verified winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// IR compilation (`Problem` → `CompiledInstance`).
    Compile,
    /// A portfolio member's whole run (solve + verify).
    Member,
    /// Simplex pivot batches inside the LP rounding solver.
    Simplex,
    /// Branch-and-bound node expansion batches in the exact solver.
    BranchBound,
    /// Local-search improvement rounds.
    LocalSearch,
    /// Feasibility + re-evaluation verification of a candidate.
    Verify,
    /// Cooperative cancellation of a racing member.
    Cancel,
    /// Budget checkpoint batches (one event per `TRACE_TICK_BATCH`
    /// ticks charged on a handle).
    Budget,
    /// Racing-level bookkeeping (winner announcement).
    Race,
}

impl Phase {
    /// Stable lowercase name used by the JSONL exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compile => "compile",
            Phase::Member => "member",
            Phase::Simplex => "simplex",
            Phase::BranchBound => "branch_bound",
            Phase::LocalSearch => "local_search",
            Phase::Verify => "verify",
            Phase::Cancel => "cancel",
            Phase::Budget => "budget",
            Phase::Race => "race",
        }
    }

    /// Inverse of `self as u8` for the ring's word encoding. Total on
    /// the encoder's output; an out-of-range byte (impossible on a
    /// seqlock-validated slot) maps to `Budget` rather than panicking
    /// inside a trace reader.
    fn from_u8(byte: u8) -> Phase {
        match byte {
            x if x == Phase::Compile as u8 => Phase::Compile,
            x if x == Phase::Member as u8 => Phase::Member,
            x if x == Phase::Simplex as u8 => Phase::Simplex,
            x if x == Phase::BranchBound as u8 => Phase::BranchBound,
            x if x == Phase::LocalSearch as u8 => Phase::LocalSearch,
            x if x == Phase::Verify as u8 => Phase::Verify,
            x if x == Phase::Cancel as u8 => Phase::Cancel,
            x if x == Phase::Race as u8 => Phase::Race,
            _ => Phase::Budget,
        }
    }
}

/// What kind of record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// A span opened (matched by a later `SpanEnd` with the same
    /// phase + member on the same thread).
    SpanStart,
    /// A span closed; `value` is the span's wall-clock microseconds.
    SpanEnd,
    /// A point event.
    Event,
    /// A batched counter increment; `value` is the delta.
    Count,
}

impl Kind {
    /// Stable lowercase name used by the JSONL exporter.
    pub fn name(self) -> &'static str {
        match self {
            Kind::SpanStart => "span_start",
            Kind::SpanEnd => "span_end",
            Kind::Event => "event",
            Kind::Count => "count",
        }
    }

    /// Inverse of `self as u8` (see [`Phase::from_u8`]).
    fn from_u8(byte: u8) -> Kind {
        match byte {
            x if x == Kind::SpanStart as u8 => Kind::SpanStart,
            x if x == Kind::SpanEnd as u8 => Kind::SpanEnd,
            x if x == Kind::Count as u8 => Kind::Count,
            _ => Kind::Event,
        }
    }
}

/// One trace record. `Copy`, with `&'static str` labels as the only
/// pointer payload, so the ring buffer can encode it losslessly into a
/// fixed array of `u64` words (see the private `TraceEvent::encode`).
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Monotone per-sink sequence number (stamped by the sink).
    pub seq: u64,
    /// Microseconds since the sink was created (stamped by the sink).
    pub micros: u64,
    /// Small dense id of the recording thread (see [`thread_id`]).
    pub thread: u64,
    /// Runtime phase.
    pub phase: Phase,
    /// Record kind.
    pub kind: Kind,
    /// Attribution: portfolio member name or component label.
    pub member: &'static str,
    /// Free-form detail: outcome label, winner name, etc.
    pub detail: &'static str,
    /// Kind-specific payload: span µs, count delta, or 0.
    pub value: u64,
}

/// Number of `u64` words one encoded [`TraceEvent`] occupies in a ring
/// slot.
const EVENT_WORDS: usize = 9;

impl TraceEvent {
    /// Encode into the ring's word representation. The two `&'static
    /// str` labels are stored as exposed-provenance address + length
    /// word pairs; everything else is a plain integer word. Lossless:
    /// [`TraceEvent::decode`] reconstructs an identical event.
    fn encode(&self) -> [u64; EVENT_WORDS] {
        [
            self.seq,
            self.micros,
            self.thread,
            ((self.phase as u64) << 8) | self.kind as u64,
            self.member.as_ptr().expose_provenance() as u64,
            self.member.len() as u64,
            self.detail.as_ptr().expose_provenance() as u64,
            self.detail.len() as u64,
            self.value,
        ]
    }

    /// Decode the ring's word representation.
    ///
    /// Must only be called on words validated by the slot seqlock (state
    /// unchanged across the read), i.e. on a consistent snapshot of one
    /// complete [`TraceEvent::encode`] — a torn mix of two events could
    /// pair one event's label address with the other's length.
    fn decode(words: [u64; EVENT_WORDS]) -> TraceEvent {
        TraceEvent {
            seq: words[0],
            micros: words[1],
            thread: words[2],
            phase: Phase::from_u8((words[3] >> 8) as u8),
            kind: Kind::from_u8(words[3] as u8),
            member: decode_static_str(words[4], words[5]),
            detail: decode_static_str(words[6], words[7]),
            value: words[8],
        }
    }
}

/// Reconstruct a `&'static str` from the exposed-provenance address and
/// length words written by [`TraceEvent::encode`].
fn decode_static_str(addr: u64, len: u64) -> &'static str {
    if len == 0 {
        // Empty labels round-trip without touching the address word, so
        // no provenance reasoning is needed for the common "" case.
        return "";
    }
    // SAFETY: the caller (TraceEvent::decode) only passes seqlock-
    // validated word pairs, so (addr, len) came from one complete
    // `encode` of a real `&'static str`: `addr` is that string's
    // address, whose provenance `encode` exposed via
    // `expose_provenance`, `len` is its exact byte length, and the
    // pointee is immutable UTF-8 that lives for the rest of the program
    // (`'static`). Reconstructing through `with_exposed_provenance` is
    // therefore reading initialized, live, correctly-typed memory.
    unsafe {
        let ptr = std::ptr::with_exposed_provenance::<u8>(addr as usize);
        let bytes = std::slice::from_raw_parts(ptr, len as usize);
        std::str::from_utf8_unchecked(bytes)
    }
}

/// Dense per-thread id, assigned on first use, starting at 1.
///
/// `std::thread::ThreadId` has no stable integer accessor; this gives
/// traces a small, readable thread key instead.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// A place trace events go. Implementations must be cheap and must
/// never block the recording thread for long.
///
/// The sink is attached to a [`Budget`]'s shared pool with
/// [`Budget::with_sink`], so every handle created by `share()` — and
/// therefore every racing member thread — reports into the same sink
/// without any global state.
pub trait TraceSink: Send + Sync {
    /// Record one event. The sink stamps `seq` and `micros`; the caller
    /// fills everything else.
    fn record(&self, ev: TraceEvent);
}

/// The default sink: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _ev: TraceEvent) {}
}

/// One ring slot, protected by a per-slot seqlock.
///
/// `state` encodes ownership: `0` = never written; `2t + 1` = the
/// writer holding ticket `t` is mid-write; `2t + 2` = ticket `t`'s
/// event is complete. States are monotone per slot, so a reader can
/// validate a snapshot by re-checking `state` after the read.
///
/// The payload is the event's word encoding in plain relaxed atomics
/// (not `UnsafeCell` + volatile, as in the first version of this ring):
/// a concurrent read/write pair on a word is then an ordinary atomic
/// race with a well-defined (possibly stale) value, never UB — which is
/// what lets Miri, ThreadSanitizer, and the `delprop_model` scheduler
/// all run this protocol as-is. Torn *events* (a mix of two writes
/// across words) are still possible mid-race and are discarded by the
/// seqlock validation; decoding happens only after validation.
struct Slot {
    state: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

/// Lock-free multi-producer ring buffer that keeps the most recent
/// `capacity` events, overwriting the oldest on wrap-around.
///
/// Writers take a global ticket (`fetch_add`), claim the slot
/// `ticket % capacity` via CAS, volatile-write the payload, and publish
/// with a release store. A writer that discovers a *newer* ticket
/// already owns its slot drops its own (older) event — the ring's
/// contract is "most recent N", so an event that has already been
/// lapped carries no information. [`RingBufferSink::recorded`] still
/// counts every record call, and [`RingBufferSink::dropped`] counts
/// contention drops separately so tests can assert none occurred.
pub struct RingBufferSink {
    epoch: Instant,
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl fmt::Debug for RingBufferSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingBufferSink")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for RingBufferSink {
    fn default() -> Self {
        Self::new()
    }
}

impl RingBufferSink {
    /// Default capacity: 16384 events (~1.3 MiB).
    pub fn new() -> Self {
        Self::with_capacity(1 << 14)
    }

    /// A ring holding the most recent `capacity` events (rounded up to
    /// a power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        let slots = (0..cap)
            .map(|_| Slot {
                state: AtomicU64::new(0),
                words: [const { AtomicU64::new(0) }; EVENT_WORDS],
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RingBufferSink {
            epoch: budget::now(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including those since overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped because a newer write lapped them mid-claim.
    /// Zero unless the ring is far too small for the producer rate.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the surviving events, oldest first (by `seq`).
    ///
    /// Safe to call while writers are active: slots mid-write are
    /// re-read a bounded number of times and then skipped, so the
    /// snapshot is consistent but possibly missing the very newest
    /// in-flight events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            for _ in 0..64 {
                // Ordering: Acquire, pairing with the writer's Release
                // publish — once a published state is observed, the
                // word values of that publication are visible below.
                let before = slot.state.load(Ordering::Acquire);
                if before == 0 {
                    break; // never written
                }
                if before & 1 == 1 {
                    sync::spin_loop();
                    continue; // mid-write; retry
                }
                // Seqlock read: the word loads may race a concurrent
                // writer, which is fine — each word is individually
                // atomic (Relaxed; no ordering is needed per word), and
                // a torn combination is discarded by the validation
                // below, before anything is decoded.
                let mut words = [0u64; EVENT_WORDS];
                for (out_word, word) in words.iter_mut().zip(slot.words.iter()) {
                    *out_word = word.load(Ordering::Relaxed);
                }
                // Ordering: the Acquire fence keeps the word loads
                // above from being reordered past the validation load
                // below. The original volatile version of this ring
                // lacked the fence — two Acquire loads do not order the
                // data reads *between* them — which the facade port's
                // ordering audit surfaced; the model and TSan suites
                // now pin the fixed protocol down.
                fence(Ordering::Acquire);
                // Ordering: Relaxed — the fence above already orders
                // this load after the word reads, and its only job is
                // equality validation against `before`.
                let after = slot.state.load(Ordering::Relaxed);
                if before == after {
                    out.push(TraceEvent::decode(words));
                    break;
                }
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, mut ev: TraceEvent) {
        // Ordering: Relaxed — the ticket counter is a pure allocator;
        // slot handoff is synchronized through `state`, not `head`.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        ev.seq = ticket;
        ev.micros = self.epoch.elapsed().as_micros() as u64;
        let slot = &self.slots[(ticket & self.mask) as usize];
        let writing = 2 * ticket + 1;
        let done = 2 * ticket + 2;
        let mut spins = 0u32;
        loop {
            // Ordering: Acquire — pairs with the previous owner's
            // Release publish, so the monotone state progression is
            // observed in order while we wait our turn.
            let state = slot.state.load(Ordering::Acquire);
            if state >= done {
                // A newer ticket already owns this slot: our event was
                // lapped before we could write it. Drop it.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if state & 1 == 1 {
                // An older writer is mid-write on this slot; wait for
                // it to publish, yielding if it takes long.
                spins += 1;
                if spins < 128 {
                    sync::spin_loop();
                } else {
                    sync::thread::yield_now();
                }
                continue;
            }
            // Ordering: Acquire on success so this writer's word stores
            // are ordered after the previous publication it overwrites;
            // Relaxed on failure (the retry re-loads with Acquire).
            if slot
                .state
                .compare_exchange_weak(state, writing, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        // We hold the slot's seqlock (`state` is odd with our ticket),
        // so no other *writer* races these stores; readers may load
        // concurrently but discard mismatched-state snapshots.
        // Ordering: Relaxed per word — publication ordering is provided
        // wholesale by the Release store of `done` below.
        for (word, value) in slot.words.iter().zip(ev.encode()) {
            word.store(value, Ordering::Relaxed);
        }
        // Ordering: Release — publishes every word store above to any
        // reader whose Acquire load observes `done`.
        slot.state.store(done, Ordering::Release);
    }
}

/// RAII guard for a phase span: records `SpanStart` on creation and
/// `SpanEnd` (with elapsed µs) on drop or [`Span::end_with`].
///
/// Inert — no clock read, no events — when the budget has no sink.
#[must_use = "a span records its end when dropped; binding it to `_` ends it immediately"]
pub struct Span<'a> {
    budget: Option<&'a Budget>,
    phase: Phase,
    member: &'static str,
    start: Option<Instant>,
    ended: bool,
}

impl<'a> Span<'a> {
    pub(crate) fn new(budget: &'a Budget, phase: Phase, member: &'static str) -> Self {
        if budget.has_sink() {
            budget.trace_as(member, phase, Kind::SpanStart, "", 0);
            Span {
                budget: Some(budget),
                phase,
                member,
                start: Some(budget::now()),
                ended: false,
            }
        } else {
            Span {
                budget: None,
                phase,
                member,
                start: None,
                ended: true,
            }
        }
    }

    /// Close the span with an outcome label (e.g. the member status).
    pub fn end_with(mut self, detail: &'static str) {
        self.finish(detail);
    }

    fn finish(&mut self, detail: &'static str) {
        if self.ended {
            return;
        }
        self.ended = true;
        if let Some(budget) = self.budget {
            let micros = self
                .start
                .map(|s| s.elapsed().as_micros() as u64)
                .unwrap_or(0);
            budget.trace_as(self.member, self.phase, Kind::SpanEnd, detail, micros);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish("");
    }
}

/// Open a span on a budget: `trace_span!(budget, Phase::Simplex)` uses
/// the handle's label as the member; an optional third argument
/// overrides it.
#[macro_export]
macro_rules! trace_span {
    ($budget:expr, $phase:expr) => {
        $budget.span($phase, "")
    };
    ($budget:expr, $phase:expr, $member:expr) => {
        $budget.span($phase, $member)
    };
}

/// Record a point event on a budget:
/// `trace_event!(budget, Phase::Cancel, "winner_name", 0)`.
#[macro_export]
macro_rules! trace_event {
    ($budget:expr, $phase:expr, $detail:expr) => {
        $budget.trace($phase, $crate::runtime::trace::Kind::Event, $detail, 0)
    };
    ($budget:expr, $phase:expr, $detail:expr, $value:expr) => {
        $budget.trace($phase, $crate::runtime::trace::Kind::Event, $detail, $value)
    };
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render one event as a single JSON line with keys in sorted order
/// (byte-stable across runs of the same trace).
pub fn event_to_json_line(ev: &TraceEvent) -> String {
    let mut line = String::with_capacity(160);
    line.push_str("{\"detail\":\"");
    escape_into(&mut line, ev.detail);
    line.push_str("\",\"kind\":\"");
    line.push_str(ev.kind.name());
    line.push_str("\",\"member\":\"");
    escape_into(&mut line, ev.member);
    line.push_str("\",\"micros\":");
    line.push_str(&ev.micros.to_string());
    line.push_str(",\"phase\":\"");
    line.push_str(ev.phase.name());
    line.push_str("\",\"seq\":");
    line.push_str(&ev.seq.to_string());
    line.push_str(",\"thread\":");
    line.push_str(&ev.thread.to_string());
    line.push_str(",\"value\":");
    line.push_str(&ev.value.to_string());
    line.push('}');
    line
}

/// Write events as JSONL (one sorted-key JSON object per line).
pub fn write_jsonl<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    for ev in events {
        writeln!(w, "{}", event_to_json_line(ev))?;
    }
    Ok(())
}

/// Dump events to a JSONL file, creating parent directories.
pub fn dump_jsonl<P: AsRef<Path>>(path: P, events: &[TraceEvent]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut buf = Vec::with_capacity(events.len() * 160);
    write_jsonl(events, &mut buf)?;
    std::fs::write(path, buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(member: &'static str, value: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            micros: 0,
            thread: thread_id(),
            phase: Phase::Budget,
            kind: Kind::Count,
            member,
            detail: "",
            value,
        }
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = RingBufferSink::with_capacity(64);
        for i in 0..10 {
            ring.record(ev("a", i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.value, i as u64);
        }
    }

    #[test]
    fn wraparound_keeps_most_recent() {
        let ring = RingBufferSink::with_capacity(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20 {
            ring.record(ev("w", i));
        }
        let snap = ring.snapshot();
        assert_eq!(ring.recorded(), 20);
        assert_eq!(snap.len(), 8);
        // The surviving events are exactly the last 8 (seq 12..20).
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        for e in &snap {
            assert_eq!(e.value, e.seq);
        }
    }

    #[test]
    fn concurrent_record_loses_nothing_when_capacity_suffices() {
        // Shrunk under Miri (interpreted execution) so the job finishes.
        const THREADS: u64 = if cfg!(miri) { 4 } else { 8 };
        const PER_THREAD: u64 = if cfg!(miri) { 64 } else { 512 };
        let ring = Arc::new(RingBufferSink::with_capacity(
            (THREADS * PER_THREAD) as usize,
        ));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        ring.record(ev("c", t * PER_THREAD + i));
                    }
                });
            }
        });
        let snap = ring.snapshot();
        assert_eq!(ring.recorded(), THREADS * PER_THREAD);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(snap.len(), (THREADS * PER_THREAD) as usize);
        // Every event landed exactly once: all seqs distinct and every
        // payload value present.
        let mut seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), snap.len());
        let mut values: Vec<u64> = snap.iter().map(|e| e.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..THREADS * PER_THREAD).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_wraparound_never_tears() {
        // A tiny ring hammered from 4 threads: snapshots taken
        // mid-flight must never observe a half-written event. Each
        // thread writes a distinct (member, value) pair, so a torn read
        // would surface as a mismatched pair.
        const MEMBERS: [&str; 4] = ["t0", "t1", "t2", "t3"];
        // Shrunk under Miri (interpreted execution) so the job finishes
        // while still wrapping the ring many times over.
        const PER_THREAD: u64 = if cfg!(miri) { 200 } else { 5_000 };
        const SNAPSHOTS: u32 = if cfg!(miri) { 5 } else { 50 };
        let ring = Arc::new(RingBufferSink::with_capacity(32));
        std::thread::scope(|scope| {
            for (t, name) in MEMBERS.iter().enumerate() {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        ring.record(ev(name, t as u64));
                    }
                });
            }
            for _ in 0..SNAPSHOTS {
                for e in ring.snapshot() {
                    assert_eq!(MEMBERS[e.value as usize], e.member, "torn event");
                }
            }
        });
        assert_eq!(ring.recorded(), 4 * PER_THREAD);
        for e in ring.snapshot() {
            assert_eq!(MEMBERS[e.value as usize], e.member);
        }
    }

    #[test]
    fn jsonl_line_has_sorted_keys_and_escapes() {
        let e = TraceEvent {
            seq: 7,
            micros: 1234,
            thread: 2,
            phase: Phase::Simplex,
            kind: Kind::SpanEnd,
            member: "lp_round",
            detail: "ok",
            value: 99,
        };
        assert_eq!(
            event_to_json_line(&e),
            "{\"detail\":\"ok\",\"kind\":\"span_end\",\"member\":\"lp_round\",\
             \"micros\":1234,\"phase\":\"simplex\",\"seq\":7,\"thread\":2,\"value\":99}"
        );
        let mut buf = Vec::new();
        write_jsonl(&[e, e], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn noop_sink_discards() {
        let sink = NoopSink;
        sink.record(ev("x", 1));
    }

    #[test]
    fn thread_ids_are_small_and_stable() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, other);
    }
}
