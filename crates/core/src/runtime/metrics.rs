//! Zero-dependency atomic counters and histograms on a static registry.
//!
//! Complements [`crate::runtime::trace`]: traces answer "what happened
//! in this run, in order"; metrics answer "how much, in total, since
//! process start". Every metric is a `static` with a stable
//! dot-separated name, registered in [`counters`] / [`histograms`] and
//! rendered (sorted by name) by [`render`].
//!
//! Counters are monotone `AtomicU64`s; callers that need per-run deltas
//! snapshot before/after (the pattern [`crate::ir::compile_count`]
//! already established) rather than resetting, because tests in the
//! same process run concurrently.
//!
//! Histograms are fixed-size log2-bucketed (`bucket i` holds values
//! `v` with `2^i <= v < 2^(i+1)`, last bucket open-ended), so
//! `observe` is two `fetch_add`s and a bucket increment — cheap enough
//! for per-member timings on the racing path.

// Through the facade (not `std::sync::atomic` — xtask lint enforces
// this), so model builds count through instrumented atomics too. All
// operations here are Relaxed: metrics are independent monotone
// counters with no cross-location invariants to order.
use super::sync::{AtomicU64, Ordering};

/// Number of log2 buckets. Bucket 23 is open-ended and starts at
/// `2^23` µs ≈ 8.4 s, comfortably above any single solver phase.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A named monotone counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Const-construct; use only for `static` items added to the
    /// registry below.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Registry name, e.g. `"solve.lp_round"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed); // ordering: statistical counter, no data published
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.value.fetch_add(n, Ordering::Relaxed); // ordering: statistical counter, no data published
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // ordering: scrape may lag concurrent increments
    }
}

/// A named log2-bucketed histogram.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))` (bucket 0
    /// also holds zeros, the last bucket is open-ended).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Const-construct; use only for `static` items added to the
    /// registry below.
    #[allow(clippy::declare_interior_mutable_const)]
    pub const fn new(name: &'static str) -> Self {
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Registry name, e.g. `"ir.compile_micros"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one value.
    pub fn observe(&self, v: u64) {
        // ordering: Relaxed on all three — histogram cells are
        // independent statistical counters; a scrape may observe a
        // torn (count, sum, bucket) triple and that is acceptable.
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: see above
        self.sum.fetch_add(v, Ordering::Relaxed); // ordering: see above
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed); // ordering: see above
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed); // ordering: snapshot tolerates skew between cells
        }
        HistogramSnapshot {
            name: self.name,
            count: self.count.load(Ordering::Relaxed), // ordering: snapshot tolerates skew
            sum: self.sum.load(Ordering::Relaxed),     // ordering: snapshot tolerates skew
            buckets,
        }
    }
}

// --- The static registry -------------------------------------------------

/// Ticks charged against budgets (batched adds from handles).
pub static BUDGET_TICKS: Counter = Counter::new("budget.ticks");
/// Budgets driven to exhaustion.
pub static BUDGET_EXHAUSTIONS: Counter = Counter::new("budget.exhaustions");
/// Cooperative cancellations requested on budget handles.
pub static CANCELLATIONS: Counter = Counter::new("budget.cancellations");
/// `Problem` → `CompiledInstance` IR compilations.
pub static IR_COMPILES: Counter = Counter::new("ir.compiles");
/// Incremental IR assemblies (engine projections onto a shared static
/// layer) — the cheap counterpart of `ir.compiles`.
pub static IR_PATCHES: Counter = Counter::new("ir.patches");
/// Engine overlay compactions (tombstone/pending lists folded back into
/// clean sorted arrays).
pub static ENGINE_COMPACTIONS: Counter = Counter::new("engine.compactions");
/// Portfolio members actually run (not skipped / not-reached).
pub static MEMBERS_RUN: Counter = Counter::new("portfolio.members_run");
/// Racing portfolio invocations.
pub static RACES: Counter = Counter::new("portfolio.races");
/// Candidate verifications performed (feasibility + re-evaluation).
pub static VERIFICATIONS: Counter = Counter::new("portfolio.verifications");
/// Branch-and-bound node-expansion ticks (exact solvers).
pub static BNB_NODE_TICKS: Counter = Counter::new("solve.exact.node_ticks");
/// Local-search move ticks.
pub static LOCAL_SEARCH_MOVE_TICKS: Counter = Counter::new("solve.local_search.move_ticks");
/// Simplex pivot ticks (LP rounding solver).
pub static SIMPLEX_PIVOT_TICKS: Counter = Counter::new("solve.lp_round.pivot_ticks");

/// Entry-point call counters, one per solver module entry.
pub static SOLVE_SINGLE_QUERY: Counter = Counter::new("solve.single_query");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_DP_TREE: Counter = Counter::new("solve.dp_tree");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_LOWDEG_TREE: Counter = Counter::new("solve.lowdeg_tree");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_PRIMAL_DUAL: Counter = Counter::new("solve.primal_dual");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_PRIMAL_DUAL_BALANCED: Counter = Counter::new("solve.primal_dual_balanced");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_LP_ROUND: Counter = Counter::new("solve.lp_round");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_GENERAL: Counter = Counter::new("solve.general");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_EXACT: Counter = Counter::new("solve.exact");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_LOCAL_SEARCH: Counter = Counter::new("solve.local_search");
/// See [`SOLVE_SINGLE_QUERY`].
pub static SOLVE_SOURCE: Counter = Counter::new("solve.source");

/// Component partitions computed over compiled instances.
pub static SHARD_PARTITIONS: Counter = Counter::new("shard.partitions");
/// Per-shard solves actually executed (cache misses included).
pub static SHARD_SOLVES: Counter = Counter::new("shard.solves");
/// Successful steals in the work-stealing scheduler.
pub static SHARD_STEALS: Counter = Counter::new("shard.steals");
/// Engine shard-cache hits (unchanged component reused across batches).
pub static SHARD_CACHE_HITS: Counter = Counter::new("shard.cache_hits");

/// Wall-clock of each IR compilation, in microseconds.
pub static IR_COMPILE_MICROS: Histogram = Histogram::new("ir.compile_micros");
/// Wall-clock of each portfolio member run, in microseconds.
pub static MEMBER_MICROS: Histogram = Histogram::new("portfolio.member_micros");
/// Wall-clock of each verification, in microseconds.
pub static VERIFY_MICROS: Histogram = Histogram::new("portfolio.verify_micros");

/// Every registered counter. Order is registration order; consumers
/// wanting stable output should sort by [`Counter::name`] (as
/// [`render`] does).
pub fn counters() -> &'static [&'static Counter] {
    static REGISTRY: [&Counter; 26] = [
        &BUDGET_TICKS,
        &BUDGET_EXHAUSTIONS,
        &CANCELLATIONS,
        &IR_COMPILES,
        &IR_PATCHES,
        &ENGINE_COMPACTIONS,
        &MEMBERS_RUN,
        &RACES,
        &VERIFICATIONS,
        &BNB_NODE_TICKS,
        &LOCAL_SEARCH_MOVE_TICKS,
        &SIMPLEX_PIVOT_TICKS,
        &SOLVE_SINGLE_QUERY,
        &SOLVE_DP_TREE,
        &SOLVE_LOWDEG_TREE,
        &SOLVE_PRIMAL_DUAL,
        &SOLVE_PRIMAL_DUAL_BALANCED,
        &SOLVE_LP_ROUND,
        &SOLVE_GENERAL,
        &SOLVE_EXACT,
        &SOLVE_LOCAL_SEARCH,
        &SOLVE_SOURCE,
        &SHARD_PARTITIONS,
        &SHARD_SOLVES,
        &SHARD_STEALS,
        &SHARD_CACHE_HITS,
    ];
    &REGISTRY
}

/// Every registered histogram (see [`counters`] on ordering).
pub fn histograms() -> &'static [&'static Histogram] {
    static REGISTRY: [&Histogram; 3] = [&IR_COMPILE_MICROS, &MEMBER_MICROS, &VERIFY_MICROS];
    &REGISTRY
}

/// Render all metrics as `name value` lines sorted by name —
/// deterministic given equal metric values, suitable for diffing.
pub fn render() -> String {
    let mut lines: Vec<String> = counters()
        .iter()
        .map(|c| format!("{} {}", c.name(), c.get()))
        .collect();
    for h in histograms() {
        let s = h.snapshot();
        lines.push(format!(
            "{} count={} sum={} mean={:.1}",
            s.name,
            s.count,
            s.sum,
            s.mean()
        ));
    }
    lines.sort();
    let mut out = String::new();
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_math() {
        static C: Counter = Counter::new("test.counter");
        assert_eq!(C.get(), 0);
        C.inc();
        C.add(4);
        C.add(0);
        assert_eq!(C.get(), 5);
        assert_eq!(C.name(), "test.counter");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(10), 1024);
    }

    #[test]
    fn histogram_observe_and_snapshot() {
        static H: Histogram = Histogram::new("test.histogram");
        H.observe(0);
        H.observe(1);
        H.observe(1000);
        let s = H.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1001);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[9], 1); // 1000 in [512, 1024)
        assert!((s.mean() - 1001.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn registry_renders_sorted() {
        let r = render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(
            lines.len(),
            counters().len() + histograms().len(),
            "every registered metric renders exactly once"
        );
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(r.contains("ir.compiles"));
        assert!(r.contains("solve.lp_round.pivot_ticks"));
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = counters().iter().map(|c| c.name()).collect();
        names.extend(histograms().iter().map(|h| h.name()));
        let len = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), len);
    }
}
