//! Epoch-shared snapshot publication — a hand-rolled, zero-dependency
//! arc-swap.
//!
//! The serving daemon keeps its compiled instance behind an
//! [`EpochCell`]: any number of request threads take [`EpochCell::
//! snapshot`] guards (wait-free in the absence of a concurrent
//! publish, lock-free always) and share one immutable value, while a
//! writer [`EpochCell::publish`]es new epochs without ever blocking
//! readers on the old one. In-flight requests keep the epoch they
//! started with alive through the guard's `Arc`; an old epoch is
//! reclaimed only when the last guard drops.
//!
//! # Protocol
//!
//! Two slots, each holding an `Option<Arc<T>>` plus a reader **pin
//! count**; a `current` index names the published slot. A reader pins
//! a slot, then re-checks `current`: success means no writer can touch
//! that slot until the pin drops (see the safety argument at the
//! `unsafe` blocks), so the `Arc` clone races with nothing. A writer
//! takes a single-writer spinlock, waits for the *non-current* slot's
//! stragglers to unpin, overwrites it, and only then moves `current` —
//! so the slot a reader can successfully re-check is never mid-write.
//!
//! Every atomic goes through the [`super::sync`] facade, so
//! `RUSTFLAGS="--cfg delprop_model"` builds run this protocol on the
//! deterministic model-checking scheduler; `crates/core/tests/model.rs`
//! asserts a reader never observes a torn or retired epoch while
//! holding a guard, under bounded-exhaustive and seeded-random
//! schedules. The `writing` audit flag exists for exactly that test
//! (and for debug builds): it is set for the duration of each slot
//! overwrite and asserted unobservable by any successful read.

use super::sync::{self, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Number of publication slots. Two suffice: the writer recycles the
/// non-current slot, waiting out its last readers, so publishes can
/// proceed indefinitely while readers never block.
const SLOTS: usize = 2;

struct Slot<T> {
    /// Readers currently inside the pin/re-check/clone window.
    pins: AtomicUsize,
    /// Audit flag: `true` exactly while the writer overwrites this
    /// slot. A successful read (pinned + re-checked) must never see it.
    writing: AtomicBool,
    /// The epoch number stored in this slot.
    epoch: AtomicU64,
    /// The published value. `None` only in the not-yet-used second slot
    /// of a freshly constructed cell, which `current` never names.
    value: UnsafeCell<Option<Arc<T>>>,
}

/// An epoch-published, snapshot-shared value: a hand-rolled arc-swap
/// built on the [`super::sync`] facade (see the module docs for the
/// protocol and its model-checker coverage).
pub struct EpochCell<T> {
    slots: [Slot<T>; SLOTS],
    /// Index of the slot holding the current epoch.
    current: AtomicUsize,
    /// Monotone publication counter; the constructor's value is epoch 1.
    epoch: AtomicU64,
    /// Single-writer spinlock serializing `publish` calls.
    write_lock: AtomicBool,
}

// SAFETY: the `UnsafeCell` makes `EpochCell` neither `Send` nor `Sync`
// automatically. Sharing the cell shares `&T` through snapshot guards
// and moves `T` into `publish` from any thread, so both bounds require
// `T: Send + Sync`; the cell-access discipline itself (no concurrent
// read/write of a slot's value) is established by the pin protocol
// proven at the `unsafe` blocks below.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
// SAFETY: see the `Send` impl above — same argument.
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

/// A snapshot guard from [`EpochCell::snapshot`]: derefs to the
/// published value and keeps that epoch alive (and never reclaimed or
/// reused) until dropped. Cheap to clone — it is an `Arc` plus the
/// epoch number.
#[derive(Debug, Clone)]
pub struct EpochSnapshot<T> {
    value: Arc<T>,
    epoch: u64,
}

impl<T> EpochSnapshot<T> {
    /// The epoch number this guard pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared value as an owned `Arc`.
    pub fn to_arc(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }
}

impl<T> Deref for EpochSnapshot<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> EpochCell<T> {
    /// A cell publishing `initial` as epoch 1.
    pub fn new(initial: T) -> Self {
        let make_slot = |value: Option<Arc<T>>, epoch: u64| Slot {
            pins: AtomicUsize::new(0),
            writing: AtomicBool::new(false),
            epoch: AtomicU64::new(epoch),
            value: UnsafeCell::new(value),
        };
        EpochCell {
            slots: [make_slot(Some(Arc::new(initial)), 1), make_slot(None, 0)],
            current: AtomicUsize::new(0),
            epoch: AtomicU64::new(1),
            write_lock: AtomicBool::new(false),
        }
    }

    /// The current epoch number (monotone, starts at 1).
    pub fn epoch(&self) -> u64 {
        // Ordering: Acquire pairs with the `fetch_add` in `publish`; a
        // caller sequencing on an observed epoch also observes that
        // epoch's publication. Monotone, so staleness only under-reports.
        self.epoch.load(Ordering::Acquire)
    }

    /// Take a snapshot guard on the current epoch. Lock-free: retries
    /// only while a publish moves `current` mid-pin, never blocks on
    /// the writer's critical section.
    pub fn snapshot(&self) -> EpochSnapshot<T> {
        loop {
            let idx = self.current.load(Ordering::Acquire);
            // Pin before re-checking. Ordering: AcqRel — the increment
            // must be ordered before the re-check load (writer-side
            // pairing in `publish`'s pin-drain loop).
            self.slots[idx].pins.fetch_add(1, Ordering::AcqRel);
            if self.current.load(Ordering::Acquire) == idx {
                // Audit: a successful pin + re-check must exclude any
                // in-flight overwrite of this slot (torn-read sentinel
                // for the model suite; free of false positives by the
                // argument below).
                debug_assert!(
                    !self.slots[idx].writing.load(Ordering::Acquire),
                    "epoch snapshot observed a slot mid-write"
                );
                let epoch = self.slots[idx].epoch.load(Ordering::Acquire);
                // SAFETY: no `&mut` to the cell can exist here. The only
                // writer is `publish`, which overwrites a slot only (a)
                // after observing `pins == 0` for it while holding the
                // write lock, and (b) strictly before re-pointing
                // `current` at it. Our pin was ordered before the
                // re-check that observed `current == idx`, so: had a
                // write to this slot completed after our pin, `current`
                // could only equal `idx` again after a *second* publish
                // into the other slot plus a third into this one — and
                // any publish into this slot after our pin blocks on
                // our nonzero pin count. Had a write been in flight,
                // `current` would still name the other slot and the
                // re-check would have failed. Hence the value is fully
                // published and no write can start until we unpin.
                let value = unsafe { (*self.slots[idx].value.get()).clone() };
                self.slots[idx].pins.fetch_sub(1, Ordering::Release);
                match value {
                    Some(value) => return EpochSnapshot { value, epoch },
                    // `current` never names the `None` slot (see `Slot::
                    // value` docs); defensively retry rather than panic.
                    None => {
                        debug_assert!(false, "current epoch slot was empty");
                    }
                }
            } else {
                // The publish won the race: unpin and retry against the
                // new current slot.
                self.slots[idx].pins.fetch_sub(1, Ordering::Release);
            }
            sync::spin_loop();
        }
    }

    /// Publish `value` as the next epoch and return its epoch number.
    /// Readers holding snapshot guards keep their epoch; new snapshots
    /// see this one. Waits only for stragglers still pinning the slot
    /// retired **two** publishes ago, never for current readers.
    pub fn publish(&self, value: T) -> u64 {
        self.publish_arc(Arc::new(value))
    }

    /// [`EpochCell::publish`] from an existing `Arc` (no re-allocation).
    pub fn publish_arc(&self, value: Arc<T>) -> u64 {
        // Single-writer spinlock. Ordering: Acquire on the winning swap
        // pairs with the Release store below, making the previous
        // writer's slot writes visible to this one.
        while self.write_lock.swap(true, Ordering::Acquire) {
            sync::spin_loop();
        }
        let cur = self.current.load(Ordering::Acquire);
        let next = (cur + 1) % SLOTS;
        // Drain stragglers: wait until nobody pins the retired slot.
        // Readers in the pin window re-check `current`, see `cur`
        // (unchanged until the store below), and unpin `next` promptly,
        // so this terminates. Ordering: Acquire pairs with the readers'
        // Release unpin, ordering their (completed) clone before our
        // overwrite.
        while self.slots[next].pins.load(Ordering::Acquire) != 0 {
            sync::spin_loop();
        }
        self.slots[next].writing.store(true, Ordering::Release);
        // Ordering: AcqRel — the new epoch number must be ordered with
        // the slot write it describes.
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.slots[next].epoch.store(epoch, Ordering::Release);
        // SAFETY: mutual exclusion with all readers and writers. Other
        // writers: excluded by the write lock. Readers: a reader clones
        // only between a successful `current == idx` re-check and its
        // unpin; for `idx == next` that re-check cannot succeed here,
        // because `current` still names `cur` until the store below,
        // and any reader already pinned before our drain loop was
        // waited out above. So no shared reference into this slot's
        // cell exists for the duration of this write.
        unsafe {
            *self.slots[next].value.get() = Some(value);
        }
        self.slots[next].writing.store(false, Ordering::Release);
        // Ordering: Release — publishing the index publishes the fully
        // written slot to any reader whose re-check Acquires it.
        self.current.store(next, Ordering::Release);
        self.write_lock.store(false, Ordering::Release);
        epoch
    }
}

impl<T: fmt::Debug> fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("EpochCell")
            .field("epoch", &snap.epoch())
            .field("value", &*snap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sees_the_initial_epoch() {
        let cell = EpochCell::new(41);
        let s = cell.snapshot();
        assert_eq!(*s, 41);
        assert_eq!(s.epoch(), 1);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn publish_advances_the_epoch_and_old_guards_survive() {
        let cell = EpochCell::new(String::from("a"));
        let old = cell.snapshot();
        assert_eq!(cell.publish(String::from("b")), 2);
        assert_eq!(cell.publish(String::from("c")), 3);
        let new = cell.snapshot();
        // The old guard still reads its epoch — never reclaimed or
        // reused under it, even after the writer lapped both slots.
        assert_eq!(*old, "a");
        assert_eq!(old.epoch(), 1);
        assert_eq!(*new, "c");
        assert_eq!(new.epoch(), 3);
    }

    #[test]
    fn guards_are_cheap_clones_of_one_allocation() {
        let cell = EpochCell::new(7u64);
        let a = cell.snapshot();
        let b = cell.snapshot();
        let c = a.clone();
        assert!(Arc::ptr_eq(&a.to_arc(), &b.to_arc()));
        assert_eq!(*c, 7);
    }

    #[test]
    fn concurrent_readers_and_writer_tear_nothing() {
        // Stress (not model) version of the model invariant: pairs
        // published together are read together. Miri covers the
        // UnsafeCell discipline on this test; the model suite covers
        // the interleavings.
        const PUBLISHES: u64 = if cfg!(miri) { 20 } else { 2_000 };
        const READERS: usize = if cfg!(miri) { 2 } else { 4 };
        let cell = EpochCell::new((0u64, 0u64));
        std::thread::scope(|s| {
            for _ in 0..READERS {
                s.spawn(|| {
                    let mut last_epoch = 0;
                    loop {
                        let snap = cell.snapshot();
                        let (a, b) = *snap;
                        assert_eq!(a, b, "torn epoch payload");
                        assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                        last_epoch = snap.epoch();
                        if a == PUBLISHES {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            for k in 1..=PUBLISHES {
                cell.publish((k, k));
            }
        });
        assert_eq!(cell.epoch(), PUBLISHES + 1);
        assert_eq!(*cell.snapshot(), (PUBLISHES, PUBLISHES));
    }
}
