//! Work-stealing execution of per-shard solves.
//!
//! Topology: one global *injector* (an atomic task cursor handing out
//! contiguous chunks) plus one [`StealDeque`] per worker. A worker
//! prefers its own deque (LIFO, cache-warm), then claims a fresh chunk
//! from the injector, then steals the oldest task from a sibling
//! (FIFO). The injector is just a `fetch_add` cursor rather than a
//! shared queue: shard tasks are known up front and never spawn
//! children, so chunk claiming gives the same contention profile as an
//! injector queue with none of the state.
//!
//! Termination: a worker exits only when, within a single scan, its own
//! deque popped empty, the injector is drained, every victim reported
//! [`Steal::Empty`], and the completion counter equals the task count.
//! A [`Steal::Retry`] (lost CAS — somebody else is making progress)
//! voids the scan, so no task can be left behind in a deque that all
//! survivors stopped watching.
//!
//! Everything runs on the `runtime/sync` facade, so
//! `--cfg delprop_model` builds explore the full scheduler (spawn,
//! deque protocol, injector, termination) under the deterministic
//! model checker; `crates/core/tests/model.rs` asserts no task is lost
//! or run twice across schedules.

use super::deque::{Steal, StealDeque};
use crate::runtime::metrics;
use crate::runtime::sync::{self, AtomicUsize, Ordering};

/// Run `run(0..num_tasks)` across up to `workers` threads, each task
/// exactly once, in unspecified order. The calling thread is worker 0;
/// `workers - 1` scoped threads are spawned through the facade. With
/// one worker (or one task) this degenerates to a sequential loop.
pub fn run_tasks<F>(num_tasks: usize, workers: usize, run: F)
where
    F: Fn(usize) + Sync,
{
    if num_tasks == 0 {
        return;
    }
    let workers = workers.clamp(1, num_tasks);
    if workers == 1 {
        for task in 0..num_tasks {
            run(task);
        }
        return;
    }

    // Chunks amortize injector contention while leaving enough slack
    // (4× workers) for stealing to rebalance skewed task costs.
    let chunk = (num_tasks / (4 * workers)).max(1);
    let injector = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let deques: Vec<StealDeque> = (0..workers).map(|_| StealDeque::new(chunk)).collect();

    let finish = |task: usize| {
        run(task);
        // ordering: Release pairs with the Acquire load in the
        // termination check — a worker that sees `done == num_tasks`
        // also sees every task's side effects.
        done.fetch_add(1, Ordering::Release);
    };

    let worker_loop = |me: usize| loop {
        // 1. Own deque first.
        if let Some(task) = deques[me].pop() {
            finish(task);
            continue;
        }
        // 2. Claim a chunk from the injector: run the first task now,
        // expose the rest to thieves (full deque → run inline).
        // ordering: Relaxed — the ticket value itself is the claim;
        // tasks carry no cross-thread data until `done` is released.
        let start = injector.fetch_add(chunk, Ordering::Relaxed);
        if start < num_tasks {
            let end = (start + chunk).min(num_tasks);
            for task in start + 1..end {
                if let Err(task) = deques[me].push(task) {
                    finish(task);
                }
            }
            finish(start);
            continue;
        }
        // 3. Steal the oldest task from a sibling.
        let mut contended = false;
        let mut stolen = None;
        for offset in 1..workers {
            match deques[(me + offset) % workers].steal() {
                Steal::Taken(task) => {
                    metrics::SHARD_STEALS.inc();
                    stolen = Some(task);
                    break;
                }
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if let Some(task) = stolen {
            finish(task);
            continue;
        }
        // 4. Nothing anywhere. A lost steal race means someone else is
        // mid-transfer, so only a fully quiet scan may terminate.
        // ordering: Acquire pairs with each worker's Release
        // increment, so termination observes all completed work.
        if !contended && done.load(Ordering::Acquire) >= num_tasks {
            break;
        }
        sync::thread::yield_now();
    };

    sync::thread::scope(|scope| {
        let worker_loop = &worker_loop;
        for w in 1..workers {
            scope.spawn(move || worker_loop(w));
        }
        worker_loop(0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::sync::{AtomicUsize, Ordering as O};

    fn assert_each_task_once(num_tasks: usize, workers: usize) {
        let seen: Vec<AtomicUsize> = (0..num_tasks).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(num_tasks, workers, |t| {
            seen[t].fetch_add(1, O::Relaxed);
        });
        for (task, count) in seen.iter().enumerate() {
            assert_eq!(count.load(O::Relaxed), 1, "task {task} ({workers} workers)");
        }
    }

    #[test]
    fn sequential_fallback_covers_all_tasks() {
        assert_each_task_once(17, 1);
        assert_each_task_once(1, 8);
        run_tasks(0, 4, |_| panic!("no tasks to run"));
    }

    #[test]
    fn parallel_runs_each_task_exactly_once() {
        for workers in [2, 3, 4, 8] {
            assert_each_task_once(97, workers);
            assert_each_task_once(workers, workers); // one task per worker
        }
    }

    #[test]
    fn skewed_task_costs_still_complete() {
        // Task 0 is much slower than the rest: thieves must drain the
        // slow worker's deque for the run to finish promptly.
        let seen: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(64, 4, |t| {
            let spins = if t == 0 { 20_000 } else { 10 };
            for _ in 0..spins {
                std::hint::black_box(t);
            }
            seen[t].fetch_add(1, O::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(O::Relaxed) == 1));
    }
}
