//! Connected-component partitioner over the compiled incidence index.
//!
//! Two base tuples interact iff some demand's witness set or some
//! vulnerable tuple's candidate-witness set contains both: deleting one
//! then influences which deletions the other can render redundant
//! (through a shared demand) or whether damage is double-counted
//! (through a shared vulnerable tuple). Union-finding every CSR row of
//! the [`CompiledInstance`] therefore splits the instance into
//! components that are *fully independent subproblems*: demands,
//! vulnerable tuples, and candidate bases partition cleanly, any
//! solution's cost is the sum of its per-component costs, and the
//! global optimum is the sum of the per-component optima.
//!
//! Each shard re-projects its slice of `ActiveParts` onto the parent
//! instance's **shared** `StaticLayer` (an `Arc` bump — no tuple,
//! weight, or path copying) through the same
//! `CompiledInstance::assemble` path the engine uses, so a shard IR
//! is byte-identical to what a cold compile of the component alone
//! would produce, modulo the shared whole-`V` layer. The packed bitset
//! rows shrink quadratically: a full instance carries
//! `‖ΔV‖ × ‖𝒞‖/64` words of witness masks, the shards together only
//! `Σ_c ‖ΔV_c‖ × ‖𝒞_c‖/64`.
//!
//! Single-component instances short-circuit: the partition hands back
//! the parent `Arc` itself (asserted by `tests/shard_equivalence.rs`),
//! so the sharded path degenerates to the unsharded one at zero cost.

use crate::ir::{ActiveParts, CompiledInstance, Fnv1a};
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;
use std::sync::Arc;

/// Union-find over dense indices with path halving + union by rank.
/// Public because the out-of-core path runs the same component
/// discovery over flat on-disk rows without a compiled instance.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        hi
    }

    /// Merge every index in `row` into one set (no-op on empty rows).
    pub fn union_row(&mut self, row: &[u32]) {
        let mut it = row.iter();
        if let Some(&first) = it.next() {
            for &b in it {
                self.union(first, b);
            }
        }
    }
}

/// One connected component, ready to solve.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The component's own compiled instance. For a single-component
    /// parent this is the parent `Arc` itself.
    pub ir: Arc<CompiledInstance>,
    /// FNV-1a digest of the component's id sets (bases, demands,
    /// vulnerable). Two shards with equal digests describe the same
    /// subproblem over the same static layer, so certified per-shard
    /// outcomes can be memoized across `DeltaBatch`es keyed on this.
    pub digest: u64,
}

/// A compiled instance split into independent component shards.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The component shards, ordered by their smallest base tuple.
    /// Empty iff the parent has no demands.
    pub shards: Vec<Shard>,
    /// Vulnerable view tuples whose candidate-witness set is empty: no
    /// deletion can ever damage them, so they belong to no shard and
    /// contribute zero cost on every path.
    pub orphan_vulnerable: usize,
}

fn digest_ids(bases: &[TupleId], demands: &[ViewTupleId], vulnerable: &[ViewTupleId]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(bases.len() as u64);
    for t in bases {
        h.write_u64(t.relation.0 as u64);
        h.write_u64(t.index as u64);
    }
    for set in [demands, vulnerable] {
        h.write_u64(set.len() as u64);
        for id in set {
            h.write_u64(id.view as u64);
            h.write_u64(id.index as u64);
        }
    }
    h.finish()
}

/// Split `ir` into connected-component shards. `O(‖rows‖ α)` discovery
/// plus one `assemble` per component; single-component instances return
/// the parent `Arc` unchanged.
pub fn partition(ir: &Arc<CompiledInstance>) -> Partition {
    crate::runtime::metrics::SHARD_PARTITIONS.inc();
    let nb = ir.num_bases();
    let nd = ir.num_demands();
    let nv = ir.num_vulnerable();
    if nd == 0 {
        // Nothing to delete: the optimum is empty everywhere.
        return Partition {
            shards: Vec::new(),
            orphan_vulnerable: nv,
        };
    }

    let mut uf = UnionFind::new(nb);
    for d in 0..nd as u32 {
        uf.union_row(ir.demand_row(d));
    }
    let mut orphan_vulnerable = 0usize;
    for r in 0..nv as u32 {
        let row = ir.vulnerable_row(r);
        if row.is_empty() {
            orphan_vulnerable += 1;
        } else {
            uf.union_row(row);
        }
    }

    // Dense component ids in order of smallest member base. Every base
    // is a witness of some demand, so every base lands in a component
    // that contains at least one demand.
    let mut comp_of_root: Vec<u32> = vec![u32::MAX; nb];
    let mut comp_count = 0u32;
    let mut comp_of_base: Vec<u32> = Vec::with_capacity(nb);
    for b in 0..nb as u32 {
        let root = uf.find(b) as usize;
        if comp_of_root[root] == u32::MAX {
            comp_of_root[root] = comp_count;
            comp_count += 1;
        }
        comp_of_base.push(comp_of_root[root]);
    }

    if comp_count <= 1 {
        let digest = digest_ids(ir.bases(), ir.demands(), ir.vulnerable());
        return Partition {
            shards: vec![Shard {
                ir: Arc::clone(ir),
                digest,
            }],
            orphan_vulnerable,
        };
    }

    let k = comp_count as usize;
    let mut bases: Vec<Vec<TupleId>> = vec![Vec::new(); k];
    let mut demands: Vec<Vec<ViewTupleId>> = vec![Vec::new(); k];
    let mut vulnerable: Vec<Vec<ViewTupleId>> = vec![Vec::new(); k];
    for b in 0..nb as u32 {
        bases[comp_of_base[b as usize] as usize].push(ir.base(b));
    }
    for d in 0..nd as u32 {
        let c = comp_of_base[ir.demand_row(d)[0] as usize] as usize;
        demands[c].push(ir.demand(d));
    }
    for r in 0..nv as u32 {
        if let Some(&b) = ir.vulnerable_row(r).first() {
            vulnerable[comp_of_base[b as usize] as usize].push(ir.vulnerable_id(r));
        }
    }

    let statics = ir.statics_arc();
    let generation = ir.generation();
    let shards = bases
        .into_iter()
        .zip(demands)
        .zip(vulnerable)
        .map(|((bases, demands), vulnerable)| {
            let digest = digest_ids(&bases, &demands, &vulnerable);
            // The shard's ΔV flags mark only its own demands: the shard
            // IR describes the component as a self-contained instance.
            let mut deleted = vec![false; statics.norm_v()];
            for &id in &demands {
                deleted[statics.dense(id)] = true;
            }
            let parts = ActiveParts {
                bases,
                demands,
                vulnerable,
                deleted,
            };
            let ir = CompiledInstance::assemble(Arc::clone(&statics), parts, generation);
            Shard {
                ir: Arc::new(ir),
                digest,
            }
        })
        .collect();

    Partition {
        shards,
        orphan_vulnerable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::chain_problem;

    #[test]
    fn union_find_merges_rows() {
        let mut uf = UnionFind::new(6);
        uf.union_row(&[0, 1, 2]);
        uf.union_row(&[4, 5]);
        uf.union_row(&[]);
        assert_eq!(uf.find(0), uf.find(2));
        assert_eq!(uf.find(4), uf.find(5));
        assert_ne!(uf.find(1), uf.find(4));
        assert_ne!(uf.find(3), uf.find(0));
        uf.union_row(&[2, 4]);
        assert_eq!(uf.find(0), uf.find(5));
    }

    #[test]
    fn single_component_returns_parent_arc() {
        // Overlapping witness sets ({1,2,3} and {2,3,4}) force one component.
        let p = chain_problem(8, 3, &[1, 2]);
        let ir = p.compiled_arc();
        let part = partition(&ir);
        assert_eq!(part.shards.len(), 1);
        assert!(Arc::ptr_eq(&part.shards[0].ir, &ir));
    }

    #[test]
    fn disjoint_demands_split_into_two_shards() {
        // Witness sets {1,2,3} and {4,5,6} share no base: two components.
        let p = chain_problem(8, 3, &[1, 4]);
        let ir = p.compiled_arc();
        let part = partition(&ir);
        assert_eq!(part.shards.len(), 2);
        // Bases, demands, and vulnerable tuples partition exactly.
        let nb: usize = part.shards.iter().map(|s| s.ir.num_bases()).sum();
        let nd: usize = part.shards.iter().map(|s| s.ir.num_demands()).sum();
        let nv: usize = part.shards.iter().map(|s| s.ir.num_vulnerable()).sum();
        assert_eq!(nb, ir.num_bases());
        assert_eq!(nd, ir.num_demands());
        assert_eq!(nv + part.orphan_vulnerable, ir.num_vulnerable());
        assert_ne!(part.shards[0].digest, part.shards[1].digest);
        // Shards share the parent's static layer (no copying).
        for s in &part.shards {
            assert_eq!(s.ir.norm_v(), ir.norm_v());
        }
    }

    #[test]
    fn no_demands_partitions_to_nothing() {
        let p = chain_problem(6, 2, &[]);
        let part = partition(&p.compiled_arc());
        assert!(part.shards.is_empty());
    }

    #[test]
    fn digest_distinguishes_different_components() {
        let p = chain_problem(8, 3, &[1, 4]);
        let ir = p.compiled_arc();
        let d1 = digest_ids(ir.bases(), ir.demands(), ir.vulnerable());
        let d2 = digest_ids(ir.bases(), ir.demands(), &[]);
        assert_ne!(d1, d2);
    }
}
