//! Shard-parallel solving: connected-component decomposition of a
//! compiled instance, a work-stealing scheduler over the shards, and a
//! merger that sums certified per-shard optima (DESIGN.md §15).
//!
//! The soundness argument is the partition invariant from
//! [`partition()`]: demands, vulnerable tuples, and candidate bases split
//! cleanly across components, so (a) any union of per-shard-feasible
//! solutions is feasible on the whole instance, (b) the side-effect of
//! the union is exactly the sum of the per-shard side-effects (no
//! vulnerable tuple can be damaged by two shards), and (c) optima sum:
//! `OPT = Σ_c OPT_c`. A per-shard `α_c`-approximation therefore merges
//! into a `max_c α_c`-approximation — the merged [`Guarantee`] is the
//! *weakest* per-shard guarantee, by [`Guarantee::strength`].
//!
//! The per-shard chain ([`solve_component`]) is the standard
//! portfolio's fallback chain restricted to members that read only the
//! shard's *active parts* — `dp_tree` walks the shared whole-`V`
//! static layer and would silently solve the full instance per shard,
//! so it is excluded. The chain is run sequentially per shard in
//! strength order (parallelism comes from racing *shards*, not members
//! within a shard), which also makes the sharded path deterministic:
//! `tests/shard_equivalence.rs` asserts byte-equality against the same
//! chain applied to the whole instance as one shard.
//!
//! On budget exhaustion or cancellation mid-shard, the shard degrades
//! to an always-feasible incumbent (delete every candidate of the
//! shard; the empty solution for the balanced objective) labeled
//! [`Guarantee::Heuristic`] with `degraded` set, instead of failing
//! the merge — mirroring how `delpropd` sheds load under deadline.

pub mod deque;
pub mod partition;
pub mod scheduler;

pub use deque::{Steal, StealDeque};
pub use partition::{partition, Partition, Shard, UnionFind};
pub use scheduler::run_tasks;

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::runtime::metrics;
use crate::runtime::sync;
use crate::runtime::{Budget, Guarantee};
use crate::solution::Solution;
use crate::solvers::local_search::Objective;
use crate::solvers::{
    general, lowdeg_tree, lp_round, primal_dual, primal_dual_balanced, single_query,
};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::sync::Mutex;

/// A certified (or degraded) outcome for one shard.
#[derive(Debug, Clone)]
pub struct ShardSolve {
    /// The shard's verified solution (deletes only shard candidates).
    pub solution: Solution,
    /// Its cost on the shard, under the chain's objective.
    pub cost: f64,
    /// The producing member's guarantee ([`Guarantee::Heuristic`] when
    /// degraded).
    pub guarantee: Guarantee,
    /// Which chain member produced it.
    pub member: &'static str,
    /// Whether the budget drained mid-shard and the incumbent fallback
    /// was used instead of a chain member's output.
    pub degraded: bool,
}

/// The merged result of a sharded solve.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Union of the per-shard solutions.
    pub solution: Solution,
    /// Cost of the merged solution evaluated on the **full** instance
    /// (canonical ascending-vulnerable summation — byte-equal to what
    /// any unsharded evaluator reports for the same solution).
    pub cost: f64,
    /// Weakest per-shard guarantee; `Exact` when there were no shards.
    pub guarantee: Guarantee,
    /// Number of component shards solved.
    pub shards: usize,
    /// Whether any shard degraded on budget exhaustion.
    pub degraded: bool,
    /// Per-shard outcomes, in partition order.
    pub per_shard: Vec<ShardSolve>,
}

/// Run one chain member under containment: coarse budget charge, panic
/// boundary, feasibility + finite-cost verification against the shard
/// IR. `Ok(None)` means "try the next member"; `Err` carries a budget
/// refusal (exhaustion/cancellation) that the caller turns into the
/// degraded incumbent.
fn attempt(
    ir: &CompiledInstance,
    budget: &Budget,
    objective: Objective,
    name: &'static str,
    guarantee: Guarantee,
    solve: &dyn Fn() -> Result<Solution, CoreError>,
) -> Result<Option<ShardSolve>, CoreError> {
    budget.checkpoint()?;
    budget.charge((ir.num_bases() + ir.num_demands()) as u64 + 1)?;
    let outcome = panic::catch_unwind(AssertUnwindSafe(solve));
    let solution = match outcome {
        Ok(Ok(solution)) => solution,
        Ok(Err(e @ (CoreError::BudgetExhausted { .. } | CoreError::Cancelled { .. }))) => {
            return Err(e)
        }
        // Typed failure or contained panic: fall through the chain.
        Ok(Err(_)) | Err(_) => return Ok(None),
    };
    let verified = panic::catch_unwind(AssertUnwindSafe(|| {
        let feasible = match objective {
            Objective::Standard => ir.is_feasible_of(&solution),
            Objective::Balanced => true,
        };
        if !feasible {
            return None;
        }
        let cost = match objective {
            Objective::Standard => ir.side_effect_of(&solution),
            Objective::Balanced => ir.balanced_cost_of(&solution),
        };
        cost.is_finite().then_some(cost)
    }));
    Ok(match verified {
        Ok(Some(cost)) => Some(ShardSolve {
            solution,
            cost,
            guarantee,
            member: name,
            degraded: false,
        }),
        _ => None,
    })
}

/// Always-feasible fallback when the budget drains mid-shard: delete
/// every candidate (standard — every demand has a candidate witness,
/// so this cuts them all) or delete nothing (balanced — every `ΔD` is
/// balanced-feasible).
fn degraded_incumbent(ir: &CompiledInstance, objective: Objective) -> ShardSolve {
    let (solution, cost, member) = match objective {
        Objective::Standard => {
            let solution = Solution::from_tuples(ir.bases().iter().copied());
            let cost = ir.side_effect_of(&solution);
            (solution, cost, "degraded_delete_all")
        }
        Objective::Balanced => {
            let solution = Solution::empty();
            let cost = ir.balanced_cost_of(&solution);
            (solution, cost, "degraded_empty")
        }
    };
    ShardSolve {
        solution,
        cost,
        guarantee: Guarantee::Heuristic,
        member,
        degraded: true,
    }
}

/// Solve one component shard with the deterministic fallback chain (the
/// standard portfolio restricted to active-parts-only members, in
/// strength order). Public so the out-of-core path and the differential
/// suite can run the exact same chain on IRs they built themselves.
pub fn solve_component(
    ir: &CompiledInstance,
    objective: Objective,
    budget: &Budget,
) -> Result<ShardSolve, CoreError> {
    metrics::SHARD_SOLVES.inc();
    if ir.num_demands() == 0 {
        // Nothing to eliminate; both objectives are optimized by ∅.
        return Ok(ShardSolve {
            solution: Solution::empty(),
            cost: 0.0,
            guarantee: Guarantee::Exact,
            member: "empty",
            degraded: false,
        });
    }
    let chain = |ir: &CompiledInstance| -> Result<Option<ShardSolve>, CoreError> {
        let l = ir.l().max(1) as f64;
        match objective {
            Objective::Standard => {
                if ir.num_demands() == 1 && ir.num_queries() == 1 {
                    if let Some(s) = attempt(
                        ir,
                        budget,
                        objective,
                        "single_query",
                        Guarantee::Exact,
                        &|| single_query::solve_single_deletion(ir),
                    )? {
                        return Ok(Some(s));
                    }
                }
                if ir.forest_case() {
                    if let Some(s) = attempt(
                        ir,
                        budget,
                        objective,
                        "primal_dual",
                        Guarantee::Ratio(l),
                        &|| primal_dual::solve_default(ir),
                    )? {
                        return Ok(Some(s));
                    }
                }
                if let Some(s) = attempt(
                    ir,
                    budget,
                    objective,
                    "lp_round",
                    Guarantee::Ratio(l),
                    &|| lp_round::solve_budgeted(ir, budget),
                )? {
                    return Ok(Some(s));
                }
                if ir.forest_case() {
                    let bound = Guarantee::Ratio(lowdeg_tree::ratio_bound(ir));
                    if let Some(s) = attempt(ir, budget, objective, "lowdeg_tree", bound, &|| {
                        lowdeg_tree::solve(ir)
                    })? {
                        return Ok(Some(s));
                    }
                }
                let bound = Guarantee::Ratio(general::ratio_bound(ir));
                if let Some(s) = attempt(ir, budget, objective, "general", bound, &|| {
                    general::solve(ir)
                })? {
                    return Ok(Some(s));
                }
                if let Some(s) = attempt(
                    ir,
                    budget,
                    objective,
                    "greedy",
                    Guarantee::Heuristic,
                    &|| general::solve_greedy(ir),
                )? {
                    return Ok(Some(s));
                }
            }
            Objective::Balanced => {
                if ir.forest_case() {
                    if let Some(s) = attempt(
                        ir,
                        budget,
                        objective,
                        "primal_dual_balanced",
                        Guarantee::Heuristic,
                        &|| {
                            primal_dual_balanced::solve_balanced(ir, &Default::default())
                                .map(|o| o.solution)
                        },
                    )? {
                        return Ok(Some(s));
                    }
                }
                if let Some(s) = attempt(
                    ir,
                    budget,
                    objective,
                    "general_balanced",
                    Guarantee::Heuristic,
                    &|| Ok(general::solve_balanced(ir)),
                )? {
                    return Ok(Some(s));
                }
            }
        }
        Ok(None)
    };
    match chain(ir) {
        Ok(Some(s)) => Ok(s),
        Ok(None) => Err(CoreError::Infeasible {
            reason: "no shard chain member produced a verifiable solution".to_string(),
        }),
        // Budget drained or cancelled mid-shard: degrade, don't fail.
        Err(_) => Ok(degraded_incumbent(ir, objective)),
    }
}

/// Partition `ir` into component shards, solve them on the
/// work-stealing scheduler (each task drawing from `budget`'s shared
/// pool through its own handle), and merge.
///
/// The merged cost is re-evaluated on the **full** instance in its
/// canonical vulnerable order, so it is byte-equal to any unsharded
/// evaluator's report for the same solution regardless of shard
/// scheduling; a `debug_assert` cross-checks it against the per-shard
/// sum. Feasibility of the merged solution is re-checked on the full
/// instance as a cheap final guard on the partition invariant.
pub fn solve_sharded_ir(
    ir: &Arc<CompiledInstance>,
    objective: Objective,
    budget: &Budget,
) -> Result<ShardedOutcome, CoreError> {
    let part = partition::partition(ir);
    let k = part.shards.len();
    if k == 0 {
        return Ok(ShardedOutcome {
            solution: Solution::empty(),
            cost: 0.0,
            guarantee: Guarantee::Exact,
            shards: 0,
            degraded: false,
            per_shard: Vec::new(),
        });
    }

    let slots: Vec<Mutex<Option<Result<ShardSolve, CoreError>>>> =
        (0..k).map(|_| Mutex::new(None)).collect();
    let workers = sync::available_parallelism().min(k);
    scheduler::run_tasks(k, workers, |t| {
        let handle = budget.share_labeled("shard");
        let result = solve_component(&part.shards[t].ir, objective, &handle);
        *slots[t].lock().unwrap() = Some(result);
    });

    let mut per_shard: Vec<ShardSolve> = Vec::with_capacity(k);
    for slot in slots {
        let result = slot
            .into_inner()
            .unwrap()
            .expect("the scheduler runs every shard task exactly once");
        per_shard.push(result?);
    }
    merge_shards(ir, per_shard, objective)
}

/// Merge certified per-shard outcomes into one [`ShardedOutcome`]:
/// union the solutions, re-evaluate cost and feasibility on the full
/// instance, and label the weakest per-shard guarantee. Public so the
/// engine can merge a mix of freshly solved and digest-cached shards.
pub fn merge_shards(
    ir: &CompiledInstance,
    per_shard: Vec<ShardSolve>,
    objective: Objective,
) -> Result<ShardedOutcome, CoreError> {
    let k = per_shard.len();
    let mut merged = Solution::empty();
    for s in &per_shard {
        merged.deleted.extend(s.solution.deleted.iter().copied());
    }

    let bits = ir.base_bits(&merged);
    let cost = match objective {
        Objective::Standard => ir.side_effect_bits(&bits),
        Objective::Balanced => ir.balanced_cost_bits(&bits),
    };
    if matches!(objective, Objective::Standard) && !ir.is_feasible_bits(&bits) {
        return Err(CoreError::StructureMismatch {
            solver: "sharded",
            reason: "merged per-shard solutions do not eliminate every demand \
                     (partition invariant violated)"
                .to_string(),
        });
    }
    if matches!(objective, Objective::Standard) {
        let sum: f64 = per_shard.iter().map(|s| s.cost).sum();
        debug_assert!(
            (sum - cost).abs() <= 1e-6 * (1.0 + cost.abs()),
            "per-shard side-effects ({sum}) disagree with the merged evaluation ({cost})"
        );
    }
    let guarantee = per_shard
        .iter()
        .map(|s| s.guarantee)
        .max_by(|a, b| {
            a.strength()
                .partial_cmp(&b.strength())
                .expect("guarantee strengths are finite")
        })
        .unwrap_or(Guarantee::Exact);

    Ok(ShardedOutcome {
        solution: merged,
        cost,
        guarantee,
        shards: k,
        degraded: per_shard.iter().any(|s| s.degraded),
        per_shard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::chain_problem;

    #[test]
    fn single_shard_matches_component_chain() {
        // Overlapping witness sets: a single-component instance.
        let p = chain_problem(8, 3, &[1, 2]);
        let ir = p.compiled_arc();
        let budget = Budget::unlimited();
        let sharded = solve_sharded_ir(&ir, Objective::Standard, &budget).unwrap();
        let whole = solve_component(&ir, Objective::Standard, &budget).unwrap();
        assert_eq!(sharded.shards, 1);
        assert_eq!(sharded.solution, whole.solution);
        assert_eq!(sharded.cost, whole.cost);
        assert!(!sharded.degraded);
        assert!(sharded.solution.is_feasible(&p));
    }

    #[test]
    fn two_shards_merge_to_the_whole_instance_chain() {
        // Two independent components; the sharded result must byte-equal
        // the same deterministic chain run on the full IR as one shard.
        let p = chain_problem(8, 3, &[1, 4]);
        let ir = p.compiled_arc();
        let budget = Budget::unlimited();
        let sharded = solve_sharded_ir(&ir, Objective::Standard, &budget).unwrap();
        assert_eq!(sharded.shards, 2);
        let reference = solve_component(&ir, Objective::Standard, &budget).unwrap();
        assert_eq!(sharded.solution, reference.solution);
        assert_eq!(sharded.cost.to_bits(), reference.cost.to_bits());
        let sum: f64 = sharded.per_shard.iter().map(|s| s.cost).sum();
        assert!((sum - sharded.cost).abs() < 1e-9);
        assert!(sharded.solution.is_feasible(&p));
        assert!((sharded.solution.verify_by_reevaluation(&p) - sharded.cost).abs() < 1e-9);
    }

    #[test]
    fn no_demands_is_exact_empty() {
        let p = chain_problem(6, 2, &[]);
        let out =
            solve_sharded_ir(&p.compiled_arc(), Objective::Standard, &Budget::unlimited()).unwrap();
        assert_eq!(out.shards, 0);
        assert_eq!(out.cost, 0.0);
        assert!(matches!(out.guarantee, Guarantee::Exact));
    }

    #[test]
    fn exhausted_budget_degrades_instead_of_failing() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let ir = p.compiled_arc();
        let out = solve_sharded_ir(&ir, Objective::Standard, &Budget::with_ticks(1)).unwrap();
        assert!(out.degraded);
        assert!(matches!(out.guarantee, Guarantee::Heuristic));
        assert!(out.solution.is_feasible(&p));
    }

    #[test]
    fn balanced_objective_solves_and_merges() {
        let p = chain_problem(8, 3, &[1, 4]);
        let out =
            solve_sharded_ir(&p.compiled_arc(), Objective::Balanced, &Budget::unlimited()).unwrap();
        assert!(out.cost.is_finite());
        assert!(!out.degraded);
    }
}
