//! A Chase–Lev-style work-stealing deque on the `runtime/sync` facade.
//!
//! One owner pushes and pops at the *bottom* (LIFO, cache-warm); any
//! number of thieves steal at the *top* (FIFO, oldest first). The
//! protocol is the bounded variant of Chase & Lev's dynamic circular
//! deque (SPAA '05) with the memory-order fixes of Lê et al. (PPoPP
//! '13):
//!
//! - capacity is fixed at construction ([`StealDeque::push`] refuses
//!   instead of growing — the shard scheduler knows its task count up
//!   front, so the resize protocol would be dead weight and a model
//!   state-space explosion);
//! - `top`/`bottom` are `u64` counters started at `BASE` so the
//!   owner's transient `bottom - 1` in [`StealDeque::pop`] never wraps
//!   (the facade deliberately has no signed atomics);
//! - slots are themselves `AtomicU64`s, so the whole structure is
//!   safe code: a thief that loses the `top` CAS may have read a slot
//!   that a concurrent push is about to overwrite, but the stale value
//!   is discarded with the failed CAS and no unsynchronized memory is
//!   ever touched.
//!
//! Orderings (exercised by normal builds, Miri, and TSan; the model
//! checker is sequentially consistent and verifies the *protocol*):
//!
//! - `push` publishes the slot with a `Release` store of `bottom`; a
//!   thief's `Acquire` load of `bottom` therefore sees the slot value.
//! - `pop` writes the decremented `bottom` and then issues a `SeqCst`
//!   fence before reading `top`: the owner's decrement and a thief's
//!   `top` CAS must be totally ordered, or both could take the last
//!   element.
//! - The last-element race in both `pop` and `steal` is settled by a
//!   `SeqCst` CAS on `top`: exactly one contender advances it, so an
//!   element is handed out exactly once.
//!
//! The invariants the model suite proves exhaustively
//! (`crates/core/tests/model.rs`): no task is lost, no task is handed
//! out twice, and concurrent steals linearize on `top`.

use crate::runtime::sync::{fence, AtomicU64, Ordering};

/// Index base for `top`/`bottom`: far enough from zero that the owner's
/// transient `bottom - 1` can never underflow, and far enough from
/// `u64::MAX` that a deque would have to hand out 2^63 tasks to
/// overflow.
const BASE: u64 = 1 << 32;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// Stole this task.
    Taken(usize),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
}

/// The fixed-capacity work-stealing deque. All methods take `&self`;
/// the owner discipline (only one thread calls `push`/`pop`) is a
/// usage convention of the scheduler, not a memory-safety requirement.
#[derive(Debug)]
pub struct StealDeque {
    top: AtomicU64,
    bottom: AtomicU64,
    slots: Vec<AtomicU64>,
}

impl StealDeque {
    /// An empty deque holding at most `capacity` tasks.
    pub fn new(capacity: usize) -> StealDeque {
        let cap = capacity.max(1);
        StealDeque {
            top: AtomicU64::new(BASE),
            bottom: AtomicU64::new(BASE),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn slot(&self, index: u64) -> &AtomicU64 {
        &self.slots[(index % self.slots.len() as u64) as usize]
    }

    /// Owner: push a task at the bottom. Returns the task back when the
    /// deque is full (the caller runs it inline — never dropped).
    pub fn push(&self, task: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed); // ordering: owner-only index, no one else writes it
        let t = self.top.load(Ordering::Acquire); // ordering: see finished steals before judging fullness
        if b - t >= self.slots.len() as u64 {
            return Err(task);
        }
        // ordering: Relaxed — the Release store of `bottom` below is
        // what publishes this slot write to thieves.
        self.slot(b).store(task as u64, Ordering::Relaxed);
        // ordering: Release — a thief acquiring `bottom` must see the
        // slot value stored above.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner: pop the most recently pushed task, racing thieves for the
    /// last element.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed); // ordering: owner-only index, no one else writes it
        let t = self.top.load(Ordering::Relaxed); // ordering: advisory; re-read under the fence below
        if t >= b {
            return None; // empty (steals only ever shrink the deque)
        }
        let b = b - 1;
        // ordering: Relaxed store + SeqCst fence — Chase–Lev requires
        // the decrement to be totally ordered against thieves' `top`
        // CASes, which the fence provides; the store alone need not
        // publish anything.
        self.bottom.store(b, Ordering::Relaxed);
        // ordering: SeqCst — totally orders the decrement against
        // thieves' `top` CASes (the pairing half of the block above).
        fence(Ordering::SeqCst);
        // ordering: Relaxed — the fence above already orders this load
        // after the decrement for every thief that claimed a slot.
        let t = self.top.load(Ordering::Relaxed);
        if t < b {
            // At least two tasks remained: the bottom one is ours alone.
            // ordering: Relaxed — this same thread wrote the slot.
            return Some(self.slot(b).load(Ordering::Relaxed) as usize);
        }
        if t == b {
            // Exactly one task: settle the race on `top`. Either way the
            // deque ends empty with `bottom = top = b + 1`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed) // ordering: success joins the fence total order; failure result is discarded
                .is_ok();
            // ordering: Relaxed reset — owner-only write to `bottom`.
            self.bottom.store(b + 1, Ordering::Relaxed);
            // ordering: Relaxed slot read — own write; winning the CAS
            // excluded every thief from this slot.
            return won.then(|| self.slot(b).load(Ordering::Relaxed) as usize);
        }
        // Thieves drained it between our two loads; restore `bottom`.
        self.bottom.store(b + 1, Ordering::Relaxed); // ordering: owner-only reset
        None
    }

    /// Thief: try to take the oldest task.
    pub fn steal(&self) -> Steal {
        // ordering: Acquire — see the claiming CAS of any earlier thief.
        let t = self.top.load(Ordering::Acquire);
        // ordering: SeqCst fence — order this thief's `bottom` load
        // after any other contender's `top` CAS (mirror of the fence in
        // `pop`).
        fence(Ordering::SeqCst);
        // ordering: Acquire pairs with push's Release store so the slot
        // write behind `bottom` is visible before we read it below.
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read before claiming: if the CAS below succeeds, `top` was
        // still `t`, so a push can not have lapped this slot (push
        // refuses at `bottom - top == capacity`); if it fails, the
        // possibly-stale value is discarded.
        // ordering: Relaxed — visibility came from the Acquire of
        // `bottom` above; staleness is handled by the CAS outcome.
        let task = self.slot(t).load(Ordering::Relaxed) as usize;
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed) // ordering: success joins the fence total order; failure discards `task`
            .is_ok()
        {
            Steal::Taken(task)
        } else {
            Steal::Retry
        }
    }

    /// Whether the deque is observably empty (racy; advisory only).
    pub fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::Relaxed); // ordering: advisory probe, staleness tolerated
        let b = self.bottom.load(Ordering::Relaxed); // ordering: advisory probe, staleness tolerated
        t >= b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let q = StealDeque::new(8);
        for task in 0..4 {
            q.push(task).unwrap();
        }
        assert_eq!(q.steal(), Steal::Taken(0));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.steal(), Steal::Taken(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn push_refuses_when_full() {
        let q = StealDeque::new(2);
        q.push(10).unwrap();
        q.push(11).unwrap();
        assert_eq!(q.push(12), Err(12));
        assert_eq!(q.steal(), Steal::Taken(10));
        q.push(12).unwrap();
        assert_eq!(q.pop(), Some(12));
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn single_element_pop_wins_without_contention() {
        let q = StealDeque::new(1);
        q.push(7).unwrap();
        assert_eq!(q.pop(), Some(7));
        assert!(q.is_empty());
        // Indices stay coherent after the settled race.
        q.push(8).unwrap();
        assert_eq!(q.steal(), Steal::Taken(8));
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let q = StealDeque::new(2);
        for round in 0..5 {
            q.push(2 * round).unwrap();
            q.push(2 * round + 1).unwrap();
            assert_eq!(q.steal(), Steal::Taken(2 * round));
            assert_eq!(q.pop(), Some(2 * round + 1));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_drain_hands_out_each_task_once() {
        use crate::runtime::sync::{thread, AtomicUsize, Ordering as O};
        const TASKS: usize = 2000;
        let q = StealDeque::new(TASKS);
        let seen: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
        thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| loop {
                    match q.steal() {
                        Steal::Taken(t) => {
                            seen[t].fetch_add(1, O::Relaxed);
                        }
                        Steal::Empty => {
                            if q.is_empty() {
                                break;
                            }
                        }
                        Steal::Retry => {}
                    }
                });
            }
            // Owner interleaves pushes and pops.
            for task in 0..TASKS {
                while q.push(task).is_err() {}
                if task % 3 == 0 {
                    if let Some(t) = q.pop() {
                        seen[t].fetch_add(1, O::Relaxed);
                    }
                }
            }
            while let Some(t) = q.pop() {
                seen[t].fetch_add(1, O::Relaxed);
            }
        });
        // Late steals may still be in flight after the owner drained; the
        // scope join above closes them out. Every task exactly once:
        for (task, count) in seen.iter().enumerate() {
            assert_eq!(count.load(O::Relaxed), 1, "task {task}");
        }
    }
}
