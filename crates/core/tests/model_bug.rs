//! Regression: the model checker must *find* the PR 3 over-accounting
//! bug when it is re-injected.
//!
//! Compiled only under `RUSTFLAGS="--cfg delprop_model --cfg
//! delprop_model_bug"`. The second cfg swaps `Budget::charge`'s CAS
//! admit loop for the original check-then-act sequence (separate load,
//! limit check, and store — see the `delprop_model_bug` block in
//! `runtime/budget.rs`), and this test asserts the checker catches the
//! resulting lost update in a small bounded search and hands back a
//! seed that deterministically replays it.
//!
//! This is the demonstration that the tentpole pays for itself: the
//! historical bug needed a many-thread stress loop and luck to surface
//! natively; under the scheduler it falls out of an exhaustive search
//! over two threads and one preemption, with a printed reproduction.
#![cfg(all(delprop_model, delprop_model_bug))]

use delprop_core::runtime::Budget;
use delprop_modelcheck::{explore, replay, thread, Config, Seed};

/// The smallest workload that exposes the bug: two handles of one
/// 4-tick pool each charge 2 ticks once. With an atomic admit the pool
/// meter always reads 4; under the re-injected check-then-act both
/// threads can read `used = 0`, both pass the limit check, and one
/// store overwrites the other — the meter reads 2 and two admitted
/// ticks have vanished.
fn lost_tick_model() {
    let pool = Budget::with_ticks(4);
    let (a, b) = (pool.share(), pool.share());
    let (oka, okb) = thread::scope(|s| {
        let ha = s.spawn(|| a.charge(2).is_ok() as u64);
        let hb = s.spawn(|| b.charge(2).is_ok() as u64);
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(
        pool.used(),
        2 * (oka + okb),
        "pool meter lost admitted ticks"
    );
}

#[test]
fn model_checker_finds_the_reinjected_overaccounting_bug() {
    // One preemption suffices (interrupt thread A between its load and
    // its store); the budget far exceeds what the search needs.
    let config = Config::exhaustive(1, 10_000);
    let report = explore(&config, lost_tick_model);
    let failure = report
        .failure
        .expect("the exhaustive search must find the lost update");
    assert!(
        report.schedules < 10_000,
        "the bug must surface in a small search, not at the budget \
         ceiling: {} schedules",
        report.schedules
    );
    assert!(
        failure.message.contains("lost admitted ticks"),
        "unexpected failure message: {}",
        failure.message
    );

    // The printed seed is the deliverable: log it the way `check` would,
    // prove it replays to the same failure, and prove it survives a
    // text round-trip (what a developer pastes from a CI log).
    println!(
        "over-accounting bug found in schedule {} — replay seed: {}",
        failure.schedule_index, failure.seed
    );
    let err = replay(&failure.seed, lost_tick_model).expect_err("seed must reproduce the bug");
    assert!(err.contains("lost admitted ticks"), "replayed: {err}");

    let reparsed: Seed = failure
        .seed
        .to_string()
        .parse()
        .expect("seed text round-trips");
    assert_eq!(reparsed, failure.seed);
    assert!(replay(&reparsed, lost_tick_model).is_err());

    // Shrinking only ever removes or zeroes choices.
    assert!(failure.seed.choices.len() <= failure.original_seed.choices.len());
}

/// The same workload must be clean when the bug cfg is the *only*
/// difference — guard against the test passing for an unrelated reason
/// (e.g. an over-strict assertion that would also fire on the fixed
/// CAS path). `charge(2)` twice against limit 4 admits both charges in
/// every schedule, so any failure here is the injected lost update.
#[test]
fn sanity_single_thread_is_clean_even_with_bug_injected() {
    // Without a preemption the check-then-act pair runs atomically per
    // thread, so the bug cannot fire: the search must come up clean.
    let report = explore(&Config::exhaustive(0, 10_000), lost_tick_model);
    assert!(
        report.failure.is_none(),
        "the lost update needs a mid-charge preemption"
    );
    assert!(report.complete);
}
