//! Deterministic model-checking of the `runtime` concurrency protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg delprop_model"`, which switches
//! `runtime::sync` from plain `std` atomics onto the
//! `delprop-modelcheck` scheduler: every atomic operation, spawn, join,
//! and spin hint becomes a scheduling point, and [`explore`] drives the
//! *same production code* — `Budget::charge`, the seqlock trace ring,
//! `Portfolio::solve_racing` — through bounded-exhaustive or seeded
//! random interleavings. A failing schedule panics with a replayable
//! `mc1:` seed (see DESIGN.md §11 for the replay workflow).
//!
//! The whole file is additionally gated on `not(delprop_model_bug)`:
//! the bug-injection build (`model_bug.rs`) deliberately breaks the
//! budget admit protocol, so the invariants asserted here must not run
//! there.
//!
//! Sizing: every exhaustive test is small enough to *complete* its
//! bounded space in well under a second; the random-walk tests default
//! to a smoke-sized iteration count and scale up through the
//! `DELPROP_MODEL_ITERS` environment variable in the dedicated CI job.
#![cfg(all(delprop_model, not(delprop_model_bug)))]

use delprop_core::runtime::trace::{Kind, Phase, TraceEvent, TraceSink};
use delprop_core::runtime::{Budget, EpochCell, MemberStatus, Portfolio, RingBufferSink};
use delprop_core::{CoreError, Problem};
use delprop_modelcheck::{explore, thread, Config, Report};
use delprop_query::parse_query;
use delprop_relation::{tup, Database, RelationSchema, Schema};
use std::sync::Arc;
use std::time::Duration;

/// Random-walk iteration count: smoke-sized by default, raised via
/// `DELPROP_MODEL_ITERS` in the CI model job.
fn iters(default: u64) -> u64 {
    std::env::var("DELPROP_MODEL_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Assert a report found no failure, printing the replay seed when it
/// did, and that a bounded-exhaustive run actually exhausted its space
/// (a truncated search would silently weaken every "holds in all
/// schedules" claim below).
fn assert_clean_exhaustive(report: &Report) {
    if let Some(f) = &report.failure {
        panic!(
            "model failure in schedule {} (replay seed: {}): {}",
            f.schedule_index, f.seed, f.message
        );
    }
    assert!(
        report.complete,
        "exhaustive space truncated after {} schedules; raise max_schedules",
        report.schedules
    );
}

fn assert_clean_random(report: &Report) {
    if let Some(f) = &report.failure {
        panic!(
            "model failure in schedule {} (replay seed: {}): {}",
            f.schedule_index, f.seed, f.message
        );
    }
}

// -------------------------------------------------------------------
// Budget pool invariants
// -------------------------------------------------------------------

/// Two handles hammering one limited pool: under **every** bounded
/// interleaving the pool counter stays clamped at the limit and equals
/// the sum of per-handle meters (no lost and no duplicated tick) —
/// exactly the invariant the PR 3 over-accounting bug violated.
#[test]
fn model_pool_never_exceeds_limit_and_loses_no_tick() {
    let report = explore(&Config::exhaustive(2, 200_000), || {
        let pool = Budget::with_ticks(3);
        let (a, b) = (pool.share(), pool.share());
        let (oka, okb) = thread::scope(|s| {
            let ha = s.spawn(|| (0..2).filter(|_| a.charge(1).is_ok()).count() as u64);
            let hb = s.spawn(|| (0..2).filter(|_| b.charge(1).is_ok()).count() as u64);
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(pool.used() <= 3, "used {} exceeds the limit", pool.used());
        assert_eq!(
            pool.used(),
            oka + okb,
            "pool meter must equal the number of admitted charges"
        );
        assert_eq!(pool.used(), a.own_used() + b.own_used());
        // 4 single ticks against limit 3: exactly one refusal.
        assert_eq!(oka + okb, 3);
        assert!(pool.is_exhausted());
    });
    assert_clean_exhaustive(&report);
}

/// A refused charge must not move the counter, in any interleaving:
/// two charges of 3 against limit 4 admit exactly one, and `used`
/// reports 3 — never 6, never a partial mix.
#[test]
fn model_refusal_never_inflates_used() {
    let report = explore(&Config::exhaustive(2, 200_000), || {
        let pool = Budget::with_ticks(4);
        let (a, b) = (pool.share(), pool.share());
        thread::scope(|s| {
            s.spawn(|| {
                let _ = a.charge(3);
            });
            s.spawn(|| {
                let _ = b.charge(3);
            });
        });
        assert_eq!(pool.used(), 3, "exactly one 3-tick charge fits under 4");
        assert!(pool.is_exhausted(), "the refused charge flips the flag");
        // Refusal reported the clamped counter, not the refused total.
        assert!(matches!(
            pool.error(),
            CoreError::BudgetExhausted { ticks: 3 }
        ));
    });
    assert_clean_exhaustive(&report);
}

/// Exhaustion is sticky across handles: once any charge is refused,
/// every later charge fails on every handle of the pool — even one that
/// would still fit under the limit numerically.
#[test]
fn model_exhaustion_is_sticky_across_handles() {
    let report = explore(&Config::exhaustive(2, 200_000), || {
        let pool = Budget::with_ticks(2);
        let (a, b) = (pool.share(), pool.share());
        thread::scope(|s| {
            s.spawn(|| {
                let _ = a.charge(3); // refused in every schedule: 3 > 2
            });
            s.spawn(|| {
                // Fits numerically; may land before or after the refusal.
                let first = b.charge(1);
                if first.is_err() {
                    // Sticky: once this handle saw a failure, the next
                    // fitting charge must fail too.
                    assert!(b.charge(1).is_err(), "exhaustion must not clear");
                }
            });
        });
        assert!(a.is_exhausted() && b.is_exhausted() && pool.is_exhausted());
        // Post-race, a fitting charge on the parent still fails, and the
        // meters agree with what was actually admitted.
        assert!(pool.charge(1).is_err());
        assert_eq!(pool.used(), a.own_used() + b.own_used());
        assert!(pool.used() <= 2);
    });
    assert_clean_exhaustive(&report);
}

/// Deadline rollback accounting: a charge admitted past the deadline is
/// rolled back out of *both* meters before the exhaustion flag flips,
/// so `used` equals the ticks that actually ran — under every
/// interleaving of two racing handles, including the one where the
/// second handle slips its charge in under the first handle's
/// rescheduled clock check.
#[test]
fn model_deadline_rollback_keeps_meters_consistent() {
    let report = explore(&Config::exhaustive(2, 200_000), || {
        let pool = Budget::unlimited().with_deadline(Duration::ZERO);
        let (a, b) = (pool.share(), pool.share());
        let (oka, okb) = thread::scope(|s| {
            let ha = s.spawn(|| a.checkpoint().is_ok() as u64);
            let hb = s.spawn(|| b.checkpoint().is_ok() as u64);
            (ha.join().unwrap(), hb.join().unwrap())
        });
        // Whoever reaches the (expired) clock check first rolls its own
        // tick back and exhausts the pool; the sibling either failed the
        // exhaustion precheck (rolled back or never admitted) or got
        // admitted without a clock check. In every schedule the pool
        // meter equals the surviving (admitted, never rolled back) ticks.
        assert!(pool.is_exhausted(), "a zero deadline always fires");
        assert_eq!(
            pool.used(),
            oka + okb,
            "rolled-back ticks must leave both meters"
        );
        assert_eq!(pool.used(), a.own_used() + b.own_used());
    });
    assert_clean_exhaustive(&report);
}

/// Cancellation is monotone (sticky per handle) and scoped per handle:
/// the cancelled handle keeps refusing forever with the typed error and
/// the recorded cause, while its sibling on the same pool never notices.
#[test]
fn model_cancel_is_monotone_and_per_handle() {
    let report = explore(&Config::exhaustive(2, 200_000), || {
        let pool = Budget::with_ticks(100);
        let victim = pool.share();
        let sibling = pool.share();
        thread::scope(|s| {
            s.spawn(|| {
                victim.cancel_with_cause("winner");
                // Immediately after the cancel, this handle observes it.
                assert!(victim.is_cancelled());
            });
            s.spawn(|| {
                let first = victim.charge(1);
                let second = victim.charge(1);
                // Monotone: a cancellation can only move Ok -> Err.
                if first.is_err() {
                    assert!(second.is_err(), "cancellation must be sticky");
                }
                if let Err(e) = second {
                    assert!(
                        matches!(e, CoreError::Cancelled { .. }),
                        "cancel (not exhaustion) is the typed cause: {e}"
                    );
                }
                // The sibling handle is untouched in every schedule.
                assert!(!sibling.is_cancelled());
                sibling.charge(1).expect("sibling keeps running");
            });
        });
        assert!(victim.is_cancelled());
        assert_eq!(victim.cancel_cause(), Some("winner"));
        assert!(victim.charge(1).is_err(), "cancelled forever");
        assert!(!pool.is_exhausted());
        assert_eq!(pool.used(), victim.own_used() + sibling.own_used());
    });
    assert_clean_exhaustive(&report);
}

/// Pool-wide cancellation ([`Budget::cancel_all`]) is sticky and
/// reaches **every** handle of the pool — including one shared after
/// the cancel — under every bounded interleaving; the recorded cause
/// survives to each observer. This is the request-scoped kill switch
/// the serving daemon relies on to reap stalled members ([`FaultMode::
/// Stall`] polls it charge-free), so its monotonicity is
/// deadline-critical.
#[test]
fn model_cancel_all_is_sticky_across_all_handles() {
    let report = explore(&Config::exhaustive(2, 200_000), || {
        let pool = Budget::with_ticks(100);
        let member = pool.share_labeled("member");
        thread::scope(|s| {
            s.spawn(|| {
                // A charge-free poll racing the cancel: monotone — once
                // an Err is observed, every later poll fails too.
                let first = member.poll();
                let second = member.poll();
                if first.is_err() {
                    assert!(second.is_err(), "pool cancellation must be sticky");
                }
                if let Err(e) = second {
                    assert!(
                        matches!(e, CoreError::Cancelled { .. }),
                        "pool cancel is the typed cause: {e}"
                    );
                }
            });
            s.spawn(|| {
                pool.cancel_all_with_cause("deadline");
                // The canceller observes its own kill switch at once.
                assert!(pool.is_cancelled());
            });
        });
        // Post-race: every handle — old, new, and the parent — refuses.
        assert!(member.is_cancelled() && pool.is_cancelled());
        assert!(pool.share().is_cancelled(), "later shares observe it too");
        assert!(member.poll().is_err() && member.charge(1).is_err());
        assert_eq!(member.cancel_cause(), Some("deadline"));
        assert!(!pool.is_exhausted(), "cancelled, not drained");
    });
    assert_clean_exhaustive(&report);
}

// -------------------------------------------------------------------
// Epoch snapshot cell
// -------------------------------------------------------------------

/// The epoch publication protocol in its smallest nontrivial
/// configuration, exhaustively: one writer publishing one new epoch
/// against one reader snapshotting twice. In every bounded
/// interleaving each snapshot guard holds an untorn pair whose payload
/// matches its epoch number, and the epoch never runs backwards across
/// the reader's consecutive guards.
#[test]
fn model_epoch_snapshot_never_torn_exhaustive() {
    let report = explore(&Config::exhaustive(2, 500_000), || {
        let cell = Arc::new(EpochCell::new((1u64, 1u64)));
        thread::scope(|s| {
            {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    cell.publish((2, 2));
                });
            }
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                let first = cell.snapshot();
                let second = cell.snapshot();
                for snap in [&first, &second] {
                    let (a, b) = **snap;
                    assert_eq!(a, b, "torn epoch payload");
                    assert_eq!(
                        snap.epoch(),
                        a,
                        "guard's epoch must match its payload's epoch"
                    );
                }
                assert!(second.epoch() >= first.epoch(), "epoch ran backwards");
            });
        });
        assert_eq!(cell.epoch(), 2);
        assert_eq!(*cell.snapshot(), (2, 2));
    });
    assert_clean_exhaustive(&report);
}

/// The same invariant under deeper schedules: a writer lapping both
/// slots (three publishes) while two readers hold, re-take, and compare
/// guards. A guard taken earlier is *retired* by later publishes — its
/// payload must stay intact (no reclaim-while-referenced) even after
/// the writer has recycled the slot it originally lived in. Random
/// walks with preemptions: a publish is ~10 scheduling points, too deep
/// for exhaustive DFS at this thread count.
#[test]
fn model_epoch_retired_guard_stays_intact() {
    let report = explore(&Config::random(0xE90C_4A11, iters(40), 2), || {
        let cell = Arc::new(EpochCell::new((1u64, 1u64)));
        thread::scope(|s| {
            {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for k in 2..=4u64 {
                        cell.publish((k, k));
                    }
                });
            }
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    // Hold a guard across the writer's slot recycling…
                    let held = cell.snapshot();
                    let held_pair = *held;
                    // …take a fresh one (epoch monotone)…
                    let fresh = cell.snapshot();
                    assert!(fresh.epoch() >= held.epoch());
                    let (a, b) = *fresh;
                    assert_eq!(a, b, "torn epoch payload");
                    assert_eq!(fresh.epoch(), a);
                    // …and the retired guard still reads exactly what
                    // it pinned, bit for bit.
                    assert_eq!(*held, held_pair);
                    assert_eq!(held.epoch(), held_pair.0);
                });
            }
        });
        assert_eq!(cell.epoch(), 4);
        assert_eq!(*cell.snapshot(), (4, 4));
    });
    assert_clean_random(&report);
}

// -------------------------------------------------------------------
// Seqlock trace ring
// -------------------------------------------------------------------

/// A snapshot racing two writers on a minimum-size ring must never
/// observe a torn event: every decoded event pairs the member label
/// with the value its writer recorded. Random walks with preemptions —
/// the per-record protocol is ~15 scheduling points, too deep for
/// exhaustive DFS.
#[test]
fn model_seqlock_reader_never_observes_torn_event() {
    const MEMBERS: [&str; 2] = ["left", "right"];
    let report = explore(&Config::random(0x05EC_10C4, iters(60), 2), || {
        let ring = Arc::new(RingBufferSink::with_capacity(8));
        thread::scope(|s| {
            for (t, name) in MEMBERS.iter().enumerate() {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..2 {
                        ring.record(TraceEvent {
                            seq: 0,
                            micros: 0,
                            thread: 0,
                            phase: Phase::Budget,
                            kind: Kind::Count,
                            member: name,
                            detail: "",
                            value: (t * 10 + i) as u64,
                        });
                    }
                });
            }
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for e in ring.snapshot() {
                    // A torn read would mix one writer's label with
                    // the other's value word.
                    assert_eq!(
                        MEMBERS[(e.value / 10) as usize],
                        e.member,
                        "torn event: member {:?} with value {}",
                        e.member,
                        e.value
                    );
                }
            });
        });
        // Quiescent: everything recorded survives untorn, in order.
        let snap = ring.snapshot();
        assert_eq!(ring.recorded(), 4);
        assert_eq!(ring.dropped(), 0, "capacity 8 never laps 4 events");
        assert_eq!(snap.len(), 4);
        for e in &snap {
            assert_eq!(MEMBERS[(e.value / 10) as usize], e.member);
        }
    });
    assert_clean_random(&report);
}

// -------------------------------------------------------------------
// Racing portfolio protocol
// -------------------------------------------------------------------

/// The paper's Fig. 1 database under `Q4` with one deletion — the same
/// instance `tests/racing.rs` stresses natively.
fn fig1_problem() -> Problem {
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for t in [
        tup!["Joe", "TKDE"],
        tup!["John", "TKDE"],
        tup!["Tom", "TKDE"],
        tup!["John", "TODS"],
    ] {
        db.insert("T1", t).unwrap();
    }
    for t in [
        tup!["TKDE", "XML", 30],
        tup!["TKDE", "CUBE", 30],
        tup!["TODS", "XML", 30],
    ] {
        db.insert("T2", t).unwrap();
    }
    let q = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
    p
}

/// `solve_racing` end to end under the scheduler: in every explored
/// interleaving of the real member threads there is exactly one winner,
/// its solution is verified-feasible, every non-winner is in a terminal
/// state (verified, cancelled, skipped, or a typed failure — never
/// left hanging), and the caller's own budget handle survives the race
/// uncancelled. Random walks: a full portfolio run is thousands of
/// scheduling points.
#[test]
fn model_racing_has_one_winner_and_losers_terminate() {
    let problem = fig1_problem();
    // Pre-materialize the compile cache: under the model only
    // instrumented operations are preemption points, and the OnceLock
    // inside `Problem::compiled` must not be initialized concurrently
    // with member threads blocked on it (solve_racing compiles before
    // spawning anyway; this just keeps every schedule identical).
    let expected_cost = Portfolio::standard()
        .solve(&problem, &Budget::unlimited())
        .expect("sequential baseline solves")
        .cost;
    let report = explore(&Config::random(0x0DDBA11, iters(8), 2), || {
        let budget = Budget::unlimited();
        let outcome = Portfolio::standard()
            .solve_racing(&problem, &budget)
            .expect("racing with an unlimited budget must verify a winner");
        assert!(outcome.solution.is_feasible(&problem));
        assert_eq!(
            outcome.cost, expected_cost,
            "racing must match the sequential verified cost"
        );
        // Exactly one winner, and it is one of the verified members.
        let verified: Vec<_> = outcome
            .report
            .iter()
            .filter(|r| r.status.is_verified())
            .collect();
        assert!(
            verified.iter().any(|r| r.name == outcome.winner),
            "winner {} must be a verified member",
            outcome.winner
        );
        // Every member reached a terminal state; a racing loser is
        // Cancelled (or Verified-but-costlier), never stuck or silently
        // dropped.
        for r in &outcome.report {
            assert!(
                matches!(
                    r.status,
                    MemberStatus::Skipped
                        | MemberStatus::Verified { .. }
                        | MemberStatus::Cancelled
                        | MemberStatus::RejectedInfeasible
                        | MemberStatus::RejectedVerification { .. }
                        | MemberStatus::Failed { .. }
                ),
                "non-terminal member state {:?} for {}",
                r.status,
                r.name
            );
        }
        // The race never cancels or exhausts the caller's handle.
        assert!(!budget.is_cancelled());
        assert!(!budget.is_exhausted());
        budget.charge(1).expect("caller budget survives the race");
    });
    assert_clean_random(&report);
}

/// The dominance-cancellation protocol in isolation: N equal-strength
/// "members" race to verify; whoever verifies cancels the others. Under
/// every bounded interleaving at least one member completes uncancelled
/// and every cancelled member stops at its next checkpoint with the
/// winner recorded as its cause.
#[test]
fn model_dominance_cancellation_protocol() {
    const NAMES: [&str; 2] = ["alpha", "beta"];
    let report = explore(&Config::exhaustive(2, 500_000), || {
        let pool = Budget::unlimited();
        let handles: Vec<Budget> = NAMES.iter().map(|n| pool.share_labeled(n)).collect();
        let finished = thread::scope(|s| {
            let joins: Vec<_> = NAMES
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let handles = &handles;
                    s.spawn(move || {
                        // "Work": one checkpoint. A cancelled member
                        // observes the token here and unwinds.
                        if handles[i].checkpoint().is_err() {
                            return false;
                        }
                        // "Verified": release everyone else.
                        for (j, h) in handles.iter().enumerate() {
                            if j != i {
                                h.cancel_with_cause(name);
                            }
                        }
                        true
                    })
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect::<Vec<bool>>()
        });
        // At least one member verifies: the first to pass its checkpoint
        // cannot have been cancelled before any cancel existed.
        assert!(
            finished.iter().any(|&f| f),
            "someone must win the race: {finished:?}"
        );
        for (i, &won) in finished.iter().enumerate() {
            if !won {
                // A loser was cancelled by a real winner, and the cause
                // names that winner.
                let cause = handles[i].cancel_cause().expect("loser has a cause");
                let winner = NAMES.iter().position(|&n| n == cause).unwrap();
                assert!(finished[winner], "cause {cause} must have verified");
                assert!(handles[i].is_cancelled());
            }
        }
        assert!(
            !pool.is_cancelled(),
            "the caller's handle is never cancelled"
        );
    });
    assert_clean_exhaustive(&report);
}

// -------------------------------------------------------------------
// Work-stealing deque invariants (shard scheduler, DESIGN.md §15)
// -------------------------------------------------------------------

/// Owner pops racing one thief's steals over a Chase-Lev deque: under
/// **every** bounded interleaving each pushed task is handed out exactly
/// once — no lost task, no double execution — counting whatever is left
/// in the deque after both sides quiesce.
#[test]
fn model_deque_no_lost_and_no_duplicated_task() {
    use delprop_core::shard::{Steal, StealDeque};
    let report = explore(&Config::exhaustive(2, 10_000), || {
        let dq = StealDeque::new(4);
        dq.push(0).unwrap();
        dq.push(1).unwrap();
        let (owner_got, thief_got) = thread::scope(|s| {
            let dq = &dq;
            let thief = s.spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Steal::Taken(v) = dq.steal() {
                        got.push(v);
                    }
                }
                got
            });
            // The owner pushes one more mid-race, then drains its side.
            let mut got = Vec::new();
            dq.push(2).unwrap();
            while let Some(v) = dq.pop() {
                got.push(v);
            }
            (got, thief.join().unwrap())
        });
        let mut all = owner_got;
        all.extend(thief_got);
        // Whatever neither side claimed must still be in the deque.
        while let Some(v) = dq.pop() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "each task exactly once");
        assert!(dq.is_empty());
    });
    assert_clean_exhaustive(&report);
}

/// Two thieves racing each other (steal linearizability): the last-
/// element CAS must serialize them, so a task is never handed to both
/// and a task the owner never reclaims goes to exactly one thief.
#[test]
fn model_deque_steals_linearize() {
    use delprop_core::shard::{Steal, StealDeque};
    let report = explore(&Config::exhaustive(2, 10_000), || {
        let dq = StealDeque::new(4);
        dq.push(7).unwrap();
        dq.push(8).unwrap();
        let grabs = thread::scope(|s| {
            let dq = &dq;
            let a = s.spawn(move || match dq.steal() {
                Steal::Taken(v) => Some(v),
                _ => None,
            });
            let b = s.spawn(move || match dq.steal() {
                Steal::Taken(v) => Some(v),
                _ => None,
            });
            (a.join().unwrap(), b.join().unwrap())
        });
        let mut all: Vec<usize> = [grabs.0, grabs.1].into_iter().flatten().collect();
        while let Some(v) = dq.pop() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(
            all,
            vec![7, 8],
            "no task duplicated or lost by racing thieves"
        );
    });
    assert_clean_exhaustive(&report);
}

/// The whole scheduler end to end under the model scheduler: every task
/// runs exactly once and `run_tasks` returns only after all of them
/// (the quiet-scan termination protocol cannot drop a straggler).
/// Random-walk: the two model workers × injector × steals make the
/// exhaustive space too wide, but every walked schedule must hold.
#[test]
fn model_run_tasks_executes_each_task_exactly_once() {
    use delprop_core::runtime::sync::{AtomicUsize, Ordering};
    use delprop_core::shard::run_tasks;
    const TASKS: usize = 3;
    let report = explore(&Config::random(0x5EED_DE9E, iters(8), 2), || {
        let runs: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(TASKS, 2, |t| {
            runs[t].fetch_add(1, Ordering::Relaxed);
        });
        for (t, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "task {t} run count");
        }
    });
    assert_clean_random(&report);
}
