//! The hardness gadgets of Theorems 1 and 2: cost-preserving encodings of
//! Red-Blue Set Cover into view side-effect and of Pos-Neg Partial Set
//! Cover into balanced deletion propagation.
//!
//! Construction (§III, Fig. 2). One relation `T(sid, tag)` with key `sid`
//! holds one tuple per set `C ∈ 𝒞`. For every element `e ∈ R ∪ B` there
//! is one project-free query `Q_e` whose body is a **join path over the
//! sets containing `e`**: one `T('C_i', x_i)` atom per such set, the `sid`
//! pinned by a constant (constants at key positions keep the query
//! key-preserving). Its view is therefore a *single* view tuple whose
//! witness set is exactly `{t_C : e ∈ C}` — so
//!
//! - deleting any chosen set's tuple kills element `e`'s view tuple;
//! - a blue/positive element is "covered" iff its view tuple dies;
//! - a red/negative element is "damaged" (side-effect) iff covered.
//!
//! Selection costs transfer **exactly** in both directions, which is what
//! pushes the `O(2^(log^(1-δ)‖V‖))` inapproximability through (Thm 1/2)
//! and what experiment EX-T1/EX-T2 verifies numerically.

use delprop_core::{Problem, Solution};
use delprop_query::{parse_query, ViewTupleId};
use delprop_relation::{tup, Database, RelationSchema, Schema, TupleId};
use delprop_setcover::{PosNegInstance, RedBlueInstance};

/// A Red-Blue (or Pos-Neg) instance realized as deletion propagation.
#[derive(Debug)]
pub struct Gadget {
    /// The deletion-propagation image.
    pub problem: Problem,
    /// `set_tuples[i]` is the base tuple of set `i`.
    pub set_tuples: Vec<TupleId>,
    /// View index of each red (resp. negative) element's query.
    pub red_views: Vec<usize>,
    /// View index of each blue (resp. positive) element's query.
    pub blue_views: Vec<usize>,
}

impl Gadget {
    /// Translate a set selection into a deletion solution.
    pub fn selection_to_solution(&self, selection: &[usize]) -> Solution {
        Solution::from_tuples(selection.iter().map(|&si| self.set_tuples[si]))
    }

    /// Translate a deletion solution back into a set selection
    /// (non-gadget tuples are ignored; there are none to delete anyway).
    pub fn solution_to_selection(&self, solution: &Solution) -> Vec<usize> {
        self.set_tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| solution.deleted.contains(t))
            .map(|(si, _)| si)
            .collect()
    }
}

/// Membership lists per element: `memberships[e] = sets containing e`.
fn memberships(num_elements: usize, sets: impl Iterator<Item = Vec<usize>>) -> Vec<Vec<usize>> {
    let mut m = vec![Vec::new(); num_elements];
    for (si, elems) in sets.enumerate() {
        for e in elems {
            m[e].push(si);
        }
    }
    m
}

/// Core construction shared by both gadgets: `red_members[r]` /
/// `blue_members[b]` list the sets containing each element. Elements
/// contained in no set get no query (an uncoverable blue element would
/// make Red-Blue infeasible; the caller's instances avoid that).
fn build(
    num_sets: usize,
    red_members: &[Vec<usize>],
    blue_members: &[Vec<usize>],
    red_weights: &[f64],
    blue_weights: &[f64],
) -> Gadget {
    let schema = Schema::from_relations([RelationSchema::new("T", 2, vec![0]).unwrap()]).unwrap();
    let mut db = Database::new(schema);
    let set_tuples: Vec<TupleId> = (0..num_sets)
        .map(|si| db.insert("T", tup![si as i64, si as i64]).unwrap())
        .collect();

    let mut queries = Vec::new();
    let mut red_views = Vec::new();
    let mut blue_views = Vec::new();
    let make_query = |name: String, sets_of_e: &[usize]| {
        let head: Vec<String> = (0..sets_of_e.len()).map(|i| format!("x{i}")).collect();
        let body: Vec<String> = sets_of_e
            .iter()
            .enumerate()
            .map(|(i, &si)| format!("T({si}, x{i})"))
            .collect();
        format!("{name}({}) :- {}", head.join(", "), body.join(", "))
    };
    for (r, sets_of) in red_members.iter().enumerate() {
        if sets_of.is_empty() {
            continue;
        }
        red_views.push(queries.len());
        queries.push(make_query(format!("Qr{r}"), sets_of));
    }
    for (b, sets_of) in blue_members.iter().enumerate() {
        assert!(
            !sets_of.is_empty(),
            "blue/positive element {b} is uncoverable; gadget requires coverable instances"
        );
        blue_views.push(queries.len());
        queries.push(make_query(format!("Qb{b}"), sets_of));
    }

    let bound = queries
        .iter()
        .map(|src| parse_query(src).unwrap().bind(db.schema()).unwrap())
        .collect();
    let mut problem = Problem::new(db, bound).unwrap();

    // Every element view has exactly one view tuple; weight it and (for
    // blues) mark it deleted.
    let mut ri = 0;
    for (e, sets_of) in red_members.iter().enumerate() {
        if sets_of.is_empty() {
            continue;
        }
        let view = red_views[ri];
        debug_assert_eq!(problem.views().views[view].len(), 1);
        problem
            .set_weight(ViewTupleId::new(view, 0), red_weights[e])
            .unwrap();
        ri += 1;
    }
    let mut bi = 0;
    for (e, sets_of) in blue_members.iter().enumerate() {
        if sets_of.is_empty() {
            continue;
        }
        let view = blue_views[bi];
        debug_assert_eq!(problem.views().views[view].len(), 1);
        let id = ViewTupleId::new(view, 0);
        problem.set_weight(id, blue_weights[e]).unwrap();
        problem.mark_deleted_id(id).unwrap();
        bi += 1;
    }

    Gadget {
        problem,
        set_tuples,
        red_views,
        blue_views,
    }
}

/// Theorem 1 gadget: Red-Blue Set Cover → (standard) view side-effect.
///
/// # Panics
/// Panics if the instance is not coverable (some blue element in no set).
pub fn redblue_to_vse(rb: &RedBlueInstance) -> Gadget {
    let red_members = memberships(rb.num_red(), rb.sets().iter().map(|s| s.red.clone()));
    let blue_members = memberships(rb.num_blue(), rb.sets().iter().map(|s| s.blue.clone()));
    let red_weights: Vec<f64> = (0..rb.num_red()).map(|r| rb.red_weight(r)).collect();
    let blue_weights = vec![1.0; rb.num_blue()];
    build(
        rb.sets().len(),
        &red_members,
        &blue_members,
        &red_weights,
        &blue_weights,
    )
}

/// Theorem 2 gadget: Pos-Neg Partial Set Cover → balanced deletion
/// propagation. Positive elements become `ΔV` (weights price missing
/// them); negative elements become preserved views (weights price
/// covering them).
///
/// # Panics
/// Panics if some positive element appears in no set (give it an escape
/// set first, or drop it — its cost is constant either way).
pub fn posneg_to_balanced(pn: &PosNegInstance) -> Gadget {
    let neg_members = memberships(pn.num_neg(), pn.sets().iter().map(|s| s.neg.clone()));
    let pos_members = memberships(pn.num_pos(), pn.sets().iter().map(|s| s.pos.clone()));
    let neg_weights: Vec<f64> = (0..pn.num_neg()).map(|n| pn.neg_weight(n)).collect();
    let pos_weights: Vec<f64> = (0..pn.num_pos()).map(|p| pn.pos_weight(p)).collect();
    build(
        pn.sets().len(),
        &neg_members,
        &pos_members,
        &neg_weights,
        &pos_weights,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_setcover::{CoverSet, PnSet};

    /// Fig. 2: 𝒞 = {C1(r1,b1), C2(r1,b2), C3(r1,b3)}.
    fn fig2() -> RedBlueInstance {
        RedBlueInstance::new(
            1,
            3,
            vec![
                CoverSet::new(vec![0], vec![0]),
                CoverSet::new(vec![0], vec![1]),
                CoverSet::new(vec![0], vec![2]),
            ],
        )
    }

    #[test]
    fn fig2_gadget_shape() {
        let g = redblue_to_vse(&fig2());
        // 4 views: one red (r1, a 3-atom join path) + three blues.
        assert_eq!(g.problem.views().views.len(), 4);
        assert_eq!(g.problem.norm_v(), 4);
        assert_eq!(g.problem.norm_delta(), 3);
        // The red view tuple joins all three sets.
        let red_view = g.red_views[0];
        let vt = &g.problem.views().views[red_view].tuples[0];
        assert_eq!(vt.unique_witnesses().len(), 3);
    }

    #[test]
    fn fig2_costs_transfer_exactly() {
        let rb = fig2();
        let g = redblue_to_vse(&rb);
        // Any cover must take all three sets; the red element is covered:
        // Red-Blue cost 1 == side-effect 1.
        let all = vec![0, 1, 2];
        let sol = g.selection_to_solution(&all);
        assert!(sol.is_feasible(&g.problem));
        assert!((sol.side_effect(&g.problem) - rb.cost(&all)).abs() < 1e-9);
        // Partial selections are infeasible on both sides.
        let partial = vec![0, 1];
        assert!(!rb.is_feasible(&partial));
        assert!(!g.selection_to_solution(&partial).is_feasible(&g.problem));
    }

    #[test]
    fn costs_transfer_on_random_instances() {
        let mut seed = 41u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..10 {
            let nr = 3 + next() % 3;
            let nb = 2 + next() % 3;
            let nsets = 4 + next() % 4;
            let sets: Vec<CoverSet> = (0..nsets)
                .map(|si| {
                    CoverSet::new(
                        (0..nr).filter(|_| next() % 3 == 0).collect(),
                        // ensure coverability: set si covers blue si % nb
                        {
                            let mut b: Vec<usize> = (0..nb).filter(|_| next() % 3 == 0).collect();
                            b.push(si % nb);
                            b
                        },
                    )
                })
                .collect();
            let rb = RedBlueInstance::new(nr, nb, sets);
            if !rb.is_coverable() {
                continue;
            }
            let g = redblue_to_vse(&rb);
            // Every selection maps with equal feasibility and cost.
            for mask in 0u32..(1 << nsets.min(10)) {
                let sel: Vec<usize> = (0..nsets).filter(|&s| mask & (1 << s) != 0).collect();
                let sol = g.selection_to_solution(&sel);
                assert_eq!(rb.is_feasible(&sel), sol.is_feasible(&g.problem));
                assert!(
                    (rb.cost(&sel) - sol.side_effect(&g.problem)).abs() < 1e-9,
                    "cost mismatch for {sel:?}"
                );
            }
        }
    }

    #[test]
    fn posneg_gadget_costs_transfer() {
        let pn = PosNegInstance::new(
            2,
            2,
            vec![
                PnSet::new(vec![0, 1], vec![0]),
                PnSet::new(vec![1], vec![1]),
            ],
        );
        let g = posneg_to_balanced(&pn);
        for mask in 0u32..4 {
            let sel: Vec<usize> = (0..2).filter(|&s| mask & (1 << s) != 0).collect();
            let sol = g.selection_to_solution(&sel);
            assert!(
                (pn.cost(&sel) - sol.balanced_cost(&g.problem)).abs() < 1e-9,
                "balanced cost mismatch for {sel:?}"
            );
        }
    }

    #[test]
    fn solution_roundtrip() {
        let g = redblue_to_vse(&fig2());
        let sel = vec![0, 2];
        let back = g.solution_to_selection(&g.selection_to_solution(&sel));
        assert_eq!(back, sel);
    }

    #[test]
    fn gadget_queries_are_project_free_and_key_preserving() {
        use delprop_query::properties;
        let g = redblue_to_vse(&fig2());
        for q in g.problem.queries() {
            assert!(properties::is_project_free(q));
            assert!(properties::is_key_preserving(q, g.problem.db().schema()));
        }
    }
}
