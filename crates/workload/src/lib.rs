//! # delprop-workload — instance generators
//!
//! Seeded, reproducible workloads for every experiment in `EXPERIMENTS.md`:
//!
//! - [`figures`]: the paper's own worked examples (Fig. 1–3);
//! - [`gadget`]: the Theorem 1/2 hardness gadgets (Red-Blue / Pos-Neg
//!   instances realized as deletion-propagation problems with exact cost
//!   transfer);
//! - [`redblue_gen`]: random Red-Blue / Pos-Neg instances;
//! - [`random_db`]: random multi-query chain workloads (general case,
//!   EX-C1 / EX-L1);
//! - [`forest`]: window-query forest cases and pivot "brooms"
//!   (EX-T3 / EX-T4 / EX-DP), plus value-disjoint multi-component
//!   copies for the sharded portfolio (EX-SHARD);
//! - [`flat`]: the out-of-core "DPF1" flat instance format (streaming
//!   writer + mmap reader) behind the 10⁶-tuple scale runs;
//! - [`cleaning`]: the QOCO-style batch-vs-sequential cleaning scenario
//!   (§V, EX-APP).

pub mod cleaning;
pub mod figures;
pub mod flat;
pub mod forest;
pub mod gadget;
pub mod random_db;
pub mod redblue_gen;
pub mod rng;
