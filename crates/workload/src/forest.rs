//! Forest-case workloads (§IV.B–D): window queries over a chain of
//! relations. The dual hypergraph of contiguous windows over a path is
//! always a hypertree (the chain itself realizes every window as a
//! subtree), so these inputs exercise `PrimeDualVSE` and
//! `LowDegTreeVSETwo` inside their guaranteed regime, and with staggered
//! windows they are *not* pivot cases — the regime where the
//! approximations matter.

use crate::rng::SplitMix64;
use delprop_core::Problem;
use delprop_query::{parse_query, ViewTupleId};
use delprop_relation::{tup, Database, RelationSchema, Schema, Tuple, Value};

/// Parameters for forest workloads.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of chain relations `R1..R_levels` (levels of the chain).
    pub levels: usize,
    /// Window width in atoms (`arity = window + 1`); the paper's `l`.
    pub window: usize,
    /// Number of parallel chains; chains merge like a binary tree
    /// (`value at level j = i >> j`), creating shared witnesses.
    pub chains: usize,
    /// Fraction of view tuples marked for deletion.
    pub delete_fraction: f64,
    /// Weighted preserved views?
    pub weighted: bool,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            levels: 4,
            window: 2,
            chains: 8,
            delete_fraction: 0.25,
            weighted: false,
        }
    }
}

impl ForestParams {
    /// Scale the workload by `factor` (the harness's `--scale` knob):
    /// multiplies the chain count, which grows `‖V‖` near-linearly while
    /// keeping the window structure (and hence `l` and the forest-case
    /// classification) unchanged. `factor = 1` is the identity, so the
    /// gated benchmark sweeps are exactly the unscaled ones.
    pub fn scaled(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        self.chains *= factor;
        self
    }
}

/// Generate a forest-case workload: one query per window position
/// `[j, j+window)` for `j = 1..=levels-window+1`.
pub fn generate(params: ForestParams, seed: u64) -> Problem {
    assert!(params.window >= 1 && params.window <= params.levels);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let schema = Schema::from_relations(
        (1..=params.levels).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..params.chains {
        for j in 1..=params.levels {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let name = format!("R{j}");
            let rid = db.schema().relation_id(&name).unwrap();
            if db
                .find_by_key(rid, &[Value::int(a), Value::int(b)])
                .is_none()
            {
                db.insert(&name, tup![a, b]).unwrap();
            }
        }
    }
    let queries: Vec<String> = (1..=params.levels - params.window + 1)
        .map(|start| {
            let head: Vec<String> = (0..=params.window).map(|k| format!("x{k}")).collect();
            let body: Vec<String> = (0..params.window)
                .map(|k| format!("R{}(x{k}, x{})", start + k, k + 1))
                .collect();
            format!("W{start}({}) :- {}", head.join(", "), body.join(", "))
        })
        .collect();
    let bound = queries
        .iter()
        .map(|src| parse_query(src).unwrap().bind(db.schema()).unwrap())
        .collect();
    let mut problem = Problem::new(db, bound).unwrap();

    let ids: Vec<ViewTupleId> = problem.views().iter().map(|(id, _)| id).collect();
    let mut any = false;
    for &id in &ids {
        if rng.chance(params.delete_fraction) {
            problem.mark_deleted_id(id).unwrap();
            any = true;
        }
    }
    if !any {
        if let Some(&id) = ids.first() {
            problem.mark_deleted_id(id).unwrap();
        }
    }
    if params.weighted {
        for &id in &ids {
            if !problem.is_deleted(id) {
                problem
                    .set_weight(id, rng.range_inclusive(1, 5) as f64)
                    .unwrap();
            }
        }
    }
    problem
}

/// Generate a forest workload of `components` value-disjoint copies of
/// the [`generate`] structure: copy `c`'s chain values are offset by
/// `c × chains`, so no tuple (and hence no witness) is shared across
/// copies and the compiled incidence index union-finds into **at
/// least** `components` shards (EX-SHARD's instance family) — shard
/// counts are additive across copies, and a copy may fragment further
/// depending on which view tuples its deletion draw touches. Each copy
/// draws deletions from its own seed stream and is guaranteed at least
/// one demand, so no copy collapses away.
pub fn generate_disjoint(params: ForestParams, components: usize, seed: u64) -> Problem {
    assert!(components >= 1);
    assert!(params.window >= 1 && params.window <= params.levels);
    let stride = params.chains.max(1) as i64;
    let schema = Schema::from_relations(
        (1..=params.levels).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for c in 0..components {
        let off = c as i64 * stride;
        for i in 0..params.chains {
            for j in 1..=params.levels {
                let a = (i >> (j - 1)) as i64 + off;
                let b = (i >> j) as i64 + off;
                let name = format!("R{j}");
                let rid = db.schema().relation_id(&name).unwrap();
                if db
                    .find_by_key(rid, &[Value::int(a), Value::int(b)])
                    .is_none()
                {
                    db.insert(&name, tup![a, b]).unwrap();
                }
            }
        }
    }
    let queries: Vec<String> = (1..=params.levels - params.window + 1)
        .map(|start| {
            let head: Vec<String> = (0..=params.window).map(|k| format!("x{k}")).collect();
            let body: Vec<String> = (0..params.window)
                .map(|k| format!("R{}(x{k}, x{})", start + k, k + 1))
                .collect();
            format!("W{start}({}) :- {}", head.join(", "), body.join(", "))
        })
        .collect();
    let bound = queries
        .iter()
        .map(|src| parse_query(src).unwrap().bind(db.schema()).unwrap())
        .collect();
    let mut problem = Problem::new(db, bound).unwrap();

    // Every value of component `c` lies in [c·stride, (c+1)·stride), so a
    // view tuple's component is its first head value divided by the
    // stride. One independent rng stream per component keeps each
    // component's ΔV draw self-contained.
    let mut rngs: Vec<SplitMix64> = (0..components)
        .map(|c| {
            SplitMix64::seed_from_u64(
                seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64)),
            )
        })
        .collect();
    let mut first_of: Vec<Option<ViewTupleId>> = vec![None; components];
    let mut any: Vec<bool> = vec![false; components];
    let tagged: Vec<(ViewTupleId, usize)> = problem
        .views()
        .iter()
        .map(|(id, vt)| {
            let v = vt.head.get(0).and_then(|v| v.as_int()).unwrap_or(0);
            (id, (v / stride) as usize)
        })
        .collect();
    for &(id, c) in &tagged {
        if first_of[c].is_none() {
            first_of[c] = Some(id);
        }
        if rngs[c].chance(params.delete_fraction) {
            problem.mark_deleted_id(id).unwrap();
            any[c] = true;
        }
    }
    for c in 0..components {
        if !any[c] {
            let id = first_of[c].expect("every component materializes view tuples");
            problem.mark_deleted_id(id).unwrap();
        }
    }
    if params.weighted {
        for &(id, c) in &tagged {
            if !problem.is_deleted(id) {
                problem
                    .set_weight(id, rngs[c].range_inclusive(1, 5) as f64)
                    .unwrap();
            }
        }
    }
    problem
}

/// A deterministic "broom" pivot-forest workload (§IV.E): hub `R0`,
/// `branches` arms of depth `depth`, and one prefix query per depth plus a
/// duplicated deepest query so cutting deep demands has nonzero cost.
/// Marks the `Q_depth` view tuple of every branch in `blue`.
pub fn pivot_broom(branches: usize, depth: usize, blue: &[usize]) -> Problem {
    assert!(depth >= 1);
    let mut rels = vec![RelationSchema::new("R0", 1, vec![0]).unwrap()];
    rels.extend((1..=depth).map(|d| RelationSchema::new(format!("R{d}"), 2, vec![0, 1]).unwrap()));
    let schema = Schema::from_relations(rels).unwrap();
    let mut db = Database::new(schema);
    db.insert("R0", tup![0]).unwrap();
    for j in 0..branches {
        let id = j as i64 + 1;
        let mut prev = id;
        db.insert("R1", tup![0, id]).unwrap();
        for d in 2..=depth {
            let next = id * 100 + d as i64;
            db.insert(&format!("R{d}"), tup![prev, next]).unwrap();
            prev = next;
        }
    }
    // Prefix queries P0..P_depth plus a duplicate of the deepest one, so
    // cutting a deep demand always damages its twin.
    let prefix_query = |name: &str, d: usize| {
        let head: Vec<String> = (0..=d).map(|k| format!("x{k}")).collect();
        let mut body: Vec<String> = vec!["R0(x0)".to_string()];
        body.extend((1..=d).map(|k| format!("R{k}(x{}, x{k})", k - 1)));
        format!("{name}({}) :- {}", head.join(", "), body.join(", "))
    };
    let mut queries: Vec<String> = (0..=depth)
        .map(|d| prefix_query(&format!("P{d}"), d))
        .collect();
    queries.push(prefix_query("Pdup", depth));
    let bound = queries
        .iter()
        .map(|src| parse_query(src).unwrap().bind(db.schema()).unwrap())
        .collect();
    let mut problem = Problem::new(db, bound).unwrap();
    // Mark blue branches on the deepest non-duplicate query (view index
    // `depth` in query order P0..Pdepth, Pdup).
    for &j in blue {
        assert!(j < branches);
        let id = j as i64 + 1;
        let mut head: Vec<Value> = vec![Value::int(0), Value::int(id)];
        for d in 2..=depth {
            head.push(Value::int(id * 100 + d as i64));
        }
        problem.mark_deleted(depth, &Tuple::new(head)).unwrap();
    }
    problem
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_core::{classify, SolverKind};

    #[test]
    fn windows_are_forest_cases() {
        let p = generate(
            ForestParams {
                levels: 4,
                window: 2,
                chains: 6,
                delete_fraction: 0.3,
                weighted: false,
            },
            3,
        );
        let r = classify(&p);
        assert!(r.forest_case);
        assert_eq!(r.l, 3);
    }

    #[test]
    fn scaled_multiplies_chains_and_norm_v() {
        let base = ForestParams::default();
        let p1 = generate(base, 7);
        let p10 = generate(base.scaled(10), 7);
        assert_eq!(base.scaled(10).chains, base.chains * 10);
        // ‖V‖ grows near-linearly in the chain count (chains merge like a
        // binary tree, so growth is slightly sublinear but well above 5x).
        assert!(
            p10.norm_v() >= 5 * p1.norm_v(),
            "{} vs {}",
            p10.norm_v(),
            p1.norm_v()
        );
        let r = delprop_core::classify(&p10);
        assert!(r.forest_case, "scaling must preserve the forest case");
    }

    #[test]
    fn disjoint_components_partition_into_k_shards() {
        let params = ForestParams {
            levels: 4,
            window: 2,
            chains: 8,
            delete_fraction: 0.25,
            weighted: false,
        };
        let mut prev = 0usize;
        for k in [1, 2, 4] {
            let p = generate_disjoint(params, k, 11);
            assert!(classify(&p).forest_case);
            let part = delprop_core::shard::partition(&p.compiled_arc());
            // Copies are value-disjoint, so shard counts are additive
            // across copies: at least one shard per copy, and adding
            // copies never merges existing ones.
            assert!(part.shards.len() >= k, "k = {k}: {}", part.shards.len());
            assert!(part.shards.len() > prev, "k = {k}: {}", part.shards.len());
            prev = part.shards.len();
        }
    }

    #[test]
    fn deterministic() {
        let params = ForestParams::default();
        let a = generate(params, 1);
        let b = generate(params, 1);
        assert_eq!(a.norm_delta(), b.norm_delta());
        assert_eq!(a.norm_v(), b.norm_v());
    }

    #[test]
    fn broom_is_pivot_case() {
        let p = pivot_broom(4, 3, &[0, 2]);
        let r = classify(&p);
        assert!(r.pivot_case, "broom must certify as pivot forest");
        assert_eq!(r.recommendation, SolverKind::PivotForestDp);
        assert_eq!(p.norm_delta(), 2);
    }

    #[test]
    fn broom_view_counts() {
        let p = pivot_broom(3, 2, &[]);
        // P0: 1, P1: 3, P2: 3, Pdup: 3.
        assert_eq!(p.norm_v(), 10);
    }

    #[test]
    fn full_window_is_single_query() {
        let p = generate(
            ForestParams {
                levels: 3,
                window: 3,
                chains: 4,
                delete_fraction: 0.5,
                weighted: false,
            },
            7,
        );
        assert_eq!(p.queries().len(), 1);
    }
}
