//! Random Red-Blue and Pos-Neg Set Cover instance generators (seeded,
//! reproducible) for the hardness and approximation experiments.

use crate::rng::{SplitMix64, GOLDEN_GAMMA};
use delprop_setcover::{CoverSet, PnSet, PosNegInstance, RedBlueInstance};

/// Parameters for random Red-Blue instances.
#[derive(Debug, Clone, Copy)]
pub struct RedBlueParams {
    /// Number of red elements ρ.
    pub num_red: usize,
    /// Number of blue elements β.
    pub num_blue: usize,
    /// Number of sets |𝒞|.
    pub num_sets: usize,
    /// Probability a given red element joins a given set.
    pub red_density: f64,
    /// Probability a given blue element joins a given set (coverability is
    /// patched afterwards: every blue is added to at least one set).
    pub blue_density: f64,
    /// If true, red weights are drawn uniformly from {1, …, 5}; else 1.
    pub weighted: bool,
}

impl Default for RedBlueParams {
    fn default() -> Self {
        RedBlueParams {
            num_red: 8,
            num_blue: 6,
            num_sets: 10,
            red_density: 0.3,
            blue_density: 0.3,
            weighted: false,
        }
    }
}

/// Generate a coverable Red-Blue instance.
pub fn redblue(params: RedBlueParams, seed: u64) -> RedBlueInstance {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut sets: Vec<CoverSet> = (0..params.num_sets)
        .map(|_| {
            CoverSet::new(
                (0..params.num_red)
                    .filter(|_| rng.chance(params.red_density))
                    .collect(),
                (0..params.num_blue)
                    .filter(|_| rng.chance(params.blue_density))
                    .collect(),
            )
        })
        .collect();
    // Patch coverability: each blue element lands in some set.
    for b in 0..params.num_blue {
        if !sets.iter().any(|s| s.blue.contains(&b)) {
            let si = rng.below(params.num_sets);
            let mut blue = sets[si].blue.clone();
            blue.push(b);
            sets[si] = CoverSet::new(sets[si].red.clone(), blue);
        }
    }
    let weights = if params.weighted {
        (0..params.num_red)
            .map(|_| rng.range_inclusive(1, 5) as f64)
            .collect()
    } else {
        vec![1.0; params.num_red]
    };
    RedBlueInstance::with_weights(params.num_red, params.num_blue, weights, sets)
}

/// Generate a Pos-Neg instance with the same shape parameters
/// (positives ↔ blue, negatives ↔ red; every positive is in some set so
/// the Theorem 2 gadget accepts it).
pub fn posneg(params: RedBlueParams, seed: u64) -> PosNegInstance {
    let rb = redblue(params, seed);
    let sets = rb
        .sets()
        .iter()
        .map(|s| PnSet::new(s.blue.clone(), s.red.clone()))
        .collect();
    let mut rng = SplitMix64::seed_from_u64(seed ^ GOLDEN_GAMMA);
    let pos_weights = if params.weighted {
        (0..params.num_blue)
            .map(|_| rng.range_inclusive(1, 3) as f64)
            .collect()
    } else {
        vec![1.0; params.num_blue]
    };
    let neg_weights = (0..params.num_red).map(|r| rb.red_weight(r)).collect();
    PosNegInstance::with_weights(pos_weights, neg_weights, sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instances_are_coverable() {
        for seed in 0..20 {
            let rb = redblue(RedBlueParams::default(), seed);
            assert!(
                rb.is_coverable(),
                "seed {seed} produced uncoverable instance"
            );
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let p = RedBlueParams::default();
        assert_eq!(redblue(p, 7), redblue(p, 7));
        assert_ne!(redblue(p, 7), redblue(p, 8));
    }

    #[test]
    fn weighted_instances_have_varied_weights() {
        let p = RedBlueParams {
            weighted: true,
            num_red: 30,
            ..Default::default()
        };
        let rb = redblue(p, 3);
        let distinct: std::collections::BTreeSet<u64> =
            (0..rb.num_red()).map(|r| rb.red_weight(r) as u64).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn posneg_mirrors_shape() {
        let p = RedBlueParams::default();
        let pn = posneg(p, 11);
        assert_eq!(pn.num_pos(), p.num_blue);
        assert_eq!(pn.num_neg(), p.num_red);
        assert_eq!(pn.sets().len(), p.num_sets);
        // Every positive is coverable.
        for e in 0..pn.num_pos() {
            assert!(pn.sets().iter().any(|s| s.pos.contains(&e)));
        }
    }
}
