//! A QOCO-style query-oriented cleaning scenario (§V of the paper).
//!
//! Emerging cleaning systems collect expert feedback on the results of
//! several covering queries and must translate "these answers are wrong"
//! back into source deletions. The paper's point: processing feedback
//! **one query at a time** is order-dependent and can damage far more
//! good answers than the **batch** optimum over all queries at once —
//! the multi-query problem this library solves. Experiment EX-APP
//! measures the gap on this generator.

use crate::rng::SplitMix64;
use delprop_core::{Problem, Solution};
use delprop_query::parse_query;
use delprop_relation::{tup, Database, RelationSchema, Schema, TupleId};

/// Parameters for the cleaning scenario.
#[derive(Debug, Clone, Copy)]
pub struct CleaningParams {
    /// Number of authors.
    pub authors: usize,
    /// Number of journals.
    pub journals: usize,
    /// Number of topics.
    pub topics: usize,
    /// Author-journal pairs (dirty fraction of these are errors).
    pub pairs: usize,
    /// Fraction of author-journal pairs that are erroneous.
    pub dirty_fraction: f64,
}

impl Default for CleaningParams {
    fn default() -> Self {
        CleaningParams {
            authors: 6,
            journals: 4,
            topics: 3,
            pairs: 14,
            dirty_fraction: 0.3,
        }
    }
}

/// A generated cleaning scenario.
#[derive(Debug)]
pub struct CleaningScenario {
    /// The deletion-propagation instance: three covering queries with the
    /// view tuples derived from dirty pairs marked for deletion.
    pub problem: Problem,
    /// The ground-truth dirty source tuples (`T1` pairs injected as
    /// errors); ideal cleaning deletes exactly these.
    pub dirty_tuples: Vec<TupleId>,
}

/// Generate a scenario: `T1(author, journal)`, `T2(journal, topic, n)`,
/// and three covering queries
/// `QA(a, j, t) :- T1(a, j), T2(j, t, n)` (author×topic feedback),
/// `QJ(a, j) :- T1(a, j)` (roster feedback),
/// `QT(j, t) :- T2(j, t, n)` (catalog feedback, never dirty here).
/// Every view tuple whose witnesses include a dirty pair is marked for
/// deletion — feedback a domain expert could give on any of the views.
pub fn generate(params: CleaningParams, seed: u64) -> CleaningScenario {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    // Every journal covers 1..=topics topics.
    for j in 0..params.journals {
        let covered = 1 + rng.below(params.topics);
        for t in 0..covered {
            db.insert(
                "T2",
                tup![format!("J{j}"), format!("topic{t}"), 10 + t as i64],
            )
            .unwrap();
        }
    }
    // Author-journal pairs, some dirty.
    let mut dirty_tuples = Vec::new();
    let mut inserted = 0;
    let mut attempts = 0;
    while inserted < params.pairs && attempts < params.pairs * 30 {
        attempts += 1;
        let a = rng.below(params.authors);
        let j = rng.below(params.journals);
        let t1 = db.schema().relation_id("T1").unwrap();
        let key = [
            delprop_relation::Value::str(format!("A{a}")),
            delprop_relation::Value::str(format!("J{j}")),
        ];
        if db.find_by_key(t1, &key).is_some() {
            continue;
        }
        let id = db
            .insert("T1", tup![format!("A{a}"), format!("J{j}")])
            .unwrap();
        if rng.chance(params.dirty_fraction) {
            dirty_tuples.push(id);
        }
        inserted += 1;
    }
    if dirty_tuples.is_empty() {
        // Guarantee at least one error so the scenario is non-trivial.
        let t1 = db.schema().relation_id("T1").unwrap();
        if let Some((id, _)) = db.live_tuples(t1).next() {
            dirty_tuples.push(id);
        }
    }

    let queries = [
        "QA(a, j, t) :- T1(a, j), T2(j, t, n)",
        "QJ(a, j) :- T1(a, j)",
        "QT(j, t) :- T2(j, t, n)",
    ];
    let bound = queries
        .iter()
        .map(|src| parse_query(src).unwrap().bind(db.schema()).unwrap())
        .collect();
    let mut problem = Problem::new(db, bound).unwrap();

    // Incomplete feedback (§V: "the incompleteness of feedbacks may lead
    // to the non-existence of side-effect-free updated database"): for
    // each dirty pair the expert flags ONE of its QA answers (not all of
    // them), and only sometimes notices the roster (QJ) entry itself.
    // Iterate the Vec (not a HashSet): randomness is drawn inside the
    // loop, so the iteration order must be deterministic.
    let mut reported: Vec<delprop_query::ViewTupleId> = Vec::new();
    for &d in &dirty_tuples {
        let qa_hits: Vec<_> = problem
            .views()
            .iter()
            .filter(|(id, vt)| id.view == 0 && vt.unique_witnesses().contains(&d))
            .map(|(id, _)| id)
            .collect();
        if !qa_hits.is_empty() {
            reported.push(qa_hits[rng.below(qa_hits.len())]);
        }
        if qa_hits.is_empty() || rng.chance(0.5) {
            // Roster feedback: the QJ tuple of the dirty pair.
            if let Some((id, _)) = problem
                .views()
                .iter()
                .find(|(id, vt)| id.view == 1 && vt.unique_witnesses().contains(&d))
            {
                reported.push(id);
            }
        }
    }
    for id in reported {
        problem.mark_deleted_id(id).unwrap();
    }
    CleaningScenario {
        problem,
        dirty_tuples,
    }
}

/// The order-dependent sequential baseline the paper warns about: process
/// one query's feedback at a time (in the given view order), each time
/// picking, per reported tuple, the witness whose deletion damages the
/// fewest *remaining* view tuples — without seeing the other queries'
/// feedback. Returns the accumulated solution.
pub fn sequential_baseline(problem: &Problem, view_order: &[usize]) -> Solution {
    let mut deleted: std::collections::BTreeSet<TupleId> = Default::default();
    for &vi in view_order {
        let demands: Vec<_> = problem
            .deletions()
            .iter()
            .copied()
            .filter(|id| id.view == vi)
            .collect();
        for rid in demands {
            let already_cut = problem.witnesses(rid).iter().any(|t| deleted.contains(t));
            if already_cut {
                continue;
            }
            // Greedy per-tuple choice, counting damage only within THIS
            // view (the sequential cleaner can't see the others).
            let best = problem
                .witnesses(rid)
                .iter()
                .copied()
                .min_by_key(|&t| {
                    problem
                        .views()
                        .occurrences(t)
                        .iter()
                        .filter(|vid| vid.view == vi && !problem.is_deleted(**vid))
                        .count()
                })
                .expect("non-empty witness set");
            deleted.insert(best);
        }
    }
    Solution::from_tuples(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_core::solvers::exact;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn scenario_is_well_formed() {
        let s = generate(CleaningParams::default(), 5);
        assert!(s.problem.norm_delta() > 0);
        assert!(!s.dirty_tuples.is_empty());
        // Deleting exactly the dirty tuples is always feasible: every
        // reported view tuple witnesses a dirty tuple.
        let ideal = Solution::from_tuples(s.dirty_tuples.iter().copied());
        assert!(ideal.is_feasible(&s.problem));
    }

    #[test]
    fn batch_never_loses_to_sequential() {
        for seed in 0..8 {
            let s = generate(CleaningParams::default(), seed);
            let batch = exact::solve(s.problem.compiled(), ExactConfig::default());
            let seq = sequential_baseline(&s.problem, &[0, 1, 2]);
            assert!(seq.is_feasible(&s.problem));
            if let Some(b) = batch.solution {
                assert!(
                    b.side_effect(&s.problem) <= seq.side_effect(&s.problem) + 1e-9,
                    "batch optimum beaten by sequential at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn sequential_is_order_dependent_in_general() {
        // Over several seeds, at least one should show different costs
        // for different orders (the paper's order-dependence point); we
        // assert only that feasibility holds for every order, and record
        // the (possible) difference.
        let mut saw_difference = false;
        for seed in 0..60 {
            let s = generate(CleaningParams::default(), seed);
            let a = sequential_baseline(&s.problem, &[0, 1, 2]);
            let b = sequential_baseline(&s.problem, &[2, 1, 0]);
            assert!(a.is_feasible(&s.problem));
            assert!(b.is_feasible(&s.problem));
            if (a.side_effect(&s.problem) - b.side_effect(&s.problem)).abs() > 1e-9 {
                saw_difference = true;
            }
        }
        // Not guaranteed for every seed family, but this deterministic
        // suite does exhibit it; if the generator changes, revisit.
        assert!(
            saw_difference,
            "expected some order dependence across seeds"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(CleaningParams::default(), 3);
        let b = generate(CleaningParams::default(), 3);
        assert_eq!(a.problem.norm_v(), b.problem.norm_v());
        assert_eq!(a.dirty_tuples, b.dirty_tuples);
    }
}
