//! Random multi-query workloads for the general-case experiments (EX-C1,
//! EX-L1): several chain-join queries over a shared pool of binary
//! relations, so views overlap and deletions trade off across queries.

use crate::rng::SplitMix64;
use delprop_core::Problem;
use delprop_query::{parse_query, ViewTupleId};
use delprop_relation::{tup, Database, RelationSchema, Schema, Value};

/// Parameters for random multi-query workloads.
#[derive(Debug, Clone, Copy)]
pub struct RandomDbParams {
    /// Number of binary relations in the pool.
    pub num_relations: usize,
    /// Number of queries (each a chain over distinct relations: sj-free).
    pub num_queries: usize,
    /// Atoms per query (chain length); `arity = atoms + 1`.
    pub atoms_per_query: usize,
    /// Domain size for join values.
    pub domain: usize,
    /// Tuples per relation (distinct pairs; capped at `domain²`).
    pub tuples_per_relation: usize,
    /// Fraction of view tuples marked for deletion.
    pub delete_fraction: f64,
    /// If true, preserved-view weights drawn from {1, …, 5}.
    pub weighted: bool,
}

impl Default for RandomDbParams {
    fn default() -> Self {
        RandomDbParams {
            num_relations: 5,
            num_queries: 3,
            atoms_per_query: 2,
            domain: 6,
            tuples_per_relation: 14,
            delete_fraction: 0.25,
            weighted: false,
        }
    }
}

/// Generate a random workload. Guarantees at least one deletion whenever
/// any view tuple exists.
pub fn generate(params: RandomDbParams, seed: u64) -> Problem {
    assert!(params.atoms_per_query >= 1);
    assert!(
        params.num_relations >= params.atoms_per_query,
        "need enough relations for sj-free chains"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    let schema = Schema::from_relations(
        (0..params.num_relations)
            .map(|i| RelationSchema::new(format!("R{i}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..params.num_relations {
        let name = format!("R{i}");
        let rid = db.schema().relation_id(&name).unwrap();
        let target = params
            .tuples_per_relation
            .min(params.domain * params.domain);
        let mut inserted = 0;
        let mut attempts = 0;
        while inserted < target && attempts < target * 20 {
            attempts += 1;
            let a = rng.below(params.domain) as i64;
            let b = rng.below(params.domain) as i64;
            if db
                .find_by_key(rid, &[Value::int(a), Value::int(b)])
                .is_none()
            {
                db.insert(&name, tup![a, b]).unwrap();
                inserted += 1;
            }
        }
    }

    let mut rel_ids: Vec<usize> = (0..params.num_relations).collect();
    let queries: Vec<String> = (0..params.num_queries)
        .map(|qi| {
            rng.shuffle(&mut rel_ids);
            let chain = &rel_ids[..params.atoms_per_query];
            let head: Vec<String> = (0..=params.atoms_per_query)
                .map(|j| format!("x{j}"))
                .collect();
            let body: Vec<String> = chain
                .iter()
                .enumerate()
                .map(|(j, &r)| format!("R{r}(x{j}, x{})", j + 1))
                .collect();
            format!("Q{qi}({}) :- {}", head.join(", "), body.join(", "))
        })
        .collect();
    let bound = queries
        .iter()
        .map(|src| parse_query(src).unwrap().bind(db.schema()).unwrap())
        .collect();
    let mut problem = Problem::new(db, bound).unwrap();

    // Mark deletions and draw weights.
    let all_ids: Vec<ViewTupleId> = problem.views().iter().map(|(id, _)| id).collect();
    let mut any = false;
    for &id in &all_ids {
        if rng.chance(params.delete_fraction) {
            problem.mark_deleted_id(id).unwrap();
            any = true;
        }
    }
    if !any {
        if let Some(&id) = all_ids.first() {
            problem.mark_deleted_id(id).unwrap();
        }
    }
    if params.weighted {
        for &id in &all_ids {
            if !problem.is_deleted(id) {
                problem
                    .set_weight(id, rng.range_inclusive(1, 5) as f64)
                    .unwrap();
            }
        }
    }
    problem
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_core::solvers::{exact, general};
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn deterministic_and_nonempty() {
        let p = RandomDbParams::default();
        let a = generate(p, 5);
        let b = generate(p, 5);
        assert_eq!(a.norm_v(), b.norm_v());
        assert_eq!(a.norm_delta(), b.norm_delta());
        assert!(a.norm_v() > 0, "workload should produce view tuples");
        assert!(a.norm_delta() > 0, "always at least one deletion");
    }

    #[test]
    fn queries_are_valid_inputs() {
        // Problem::new accepting them means key-preserving passed; also
        // check sj-freeness of the chains.
        use delprop_query::properties;
        let p = generate(RandomDbParams::default(), 9);
        for q in p.queries() {
            assert!(properties::is_self_join_free(q));
            assert!(properties::is_project_free(q));
        }
    }

    #[test]
    fn solvers_accept_generated_instances() {
        for seed in 0..5 {
            let p = generate(RandomDbParams::default(), seed);
            let approx = general::solve(p.compiled()).unwrap();
            assert!(approx.is_feasible(&p));
            let ex = exact::solve(
                p.compiled(),
                ExactConfig {
                    node_limit: Some(200_000),
                },
            );
            if let Some(opt) = ex.solution {
                assert!(approx.side_effect(&p) >= opt.side_effect(&p) - 1e-9);
            }
        }
    }

    #[test]
    fn weighted_flag_sets_weights() {
        let p = generate(
            RandomDbParams {
                weighted: true,
                ..Default::default()
            },
            3,
        );
        let distinct: std::collections::BTreeSet<u64> =
            p.preserved().map(|(id, _)| p.weight(id) as u64).collect();
        assert!(distinct.len() > 1);
    }
}
