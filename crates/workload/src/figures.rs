//! The paper's worked examples as ready-made instances: Fig. 1 (the
//! author/journal database), Fig. 2 (the hardness gadget's Red-Blue
//! instance), and Fig. 3 (the dual-hypergraph query sets).

use delprop_core::Problem;
use delprop_query::{parse_query, BoundQuery};
use delprop_relation::{tup, Database, RelationSchema, Schema};
use delprop_setcover::{CoverSet, RedBlueInstance};

/// Fig. 1 database: `T1(AuName, Journal)` and `T2(Journal, Topic,
/// #Papers)` with the seven tuples of the paper.
pub fn fig1_db() -> Database {
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1])
            .unwrap()
            .with_attr_names(&["AuName", "Journal"]),
        RelationSchema::new("T2", 3, vec![0, 1])
            .unwrap()
            .with_attr_names(&["Journal", "Topic", "#Papers"]),
    ])
    .unwrap();
    let mut d = Database::new(schema);
    for t in [
        tup!["Joe", "TKDE"],
        tup!["John", "TKDE"],
        tup!["Tom", "TKDE"],
        tup!["John", "TODS"],
    ] {
        d.insert("T1", t).unwrap();
    }
    for t in [
        tup!["TKDE", "XML", 30],
        tup!["TKDE", "CUBE", 30],
        tup!["TODS", "XML", 30],
    ] {
        d.insert("T2", t).unwrap();
    }
    d
}

/// Fig. 1(d) query `Q4(x, y, z) :- T1(x, y), T2(y, z, w)` — the
/// key-preserving one.
pub fn fig1_q4(db: &Database) -> BoundQuery {
    parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap()
}

/// Fig. 1(c) query `Q3(x, z) :- T1(x, y), T2(y, z, w)` — **not**
/// key-preserving (`y` is a key variable missing from the head); included
/// so examples can demonstrate the rejection.
pub fn fig1_q3(db: &Database) -> BoundQuery {
    parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap()
}

/// The §II.C worked deletion on Q4: `ΔV = {(John, TKDE, XML)}`.
pub fn fig1_problem() -> Problem {
    let db = fig1_db();
    let q4 = fig1_q4(&db);
    let mut p = Problem::new(db, vec![q4]).unwrap();
    p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
    p
}

/// Fig. 2's Red-Blue instance: `𝒞 = {C1(r1,b1), C2(r1,b2), C3(r1,b3)}`.
pub fn fig2_redblue() -> RedBlueInstance {
    RedBlueInstance::new(
        1,
        3,
        vec![
            CoverSet::new(vec![0], vec![0]),
            CoverSet::new(vec![0], vec![1]),
            CoverSet::new(vec![0], vec![2]),
        ],
    )
}

/// A query set given as relation-index hyperedges.
pub type QuerySetEdges = Vec<Vec<usize>>;

/// Fig. 3's query sets as relation-index hyperedges over `{T1..T4}`
/// (0-based): returns `(Q1-set, Q2-set, Q3-set)` of the paper — the first
/// is not a hypertree, the other two are.
pub fn fig3_query_sets() -> (QuerySetEdges, QuerySetEdges, QuerySetEdges) {
    let q1 = vec![0, 1, 2];
    let q2 = vec![0, 1, 3];
    let q3 = vec![0, 1];
    let q4 = vec![0, 2];
    let q5 = vec![1, 2];
    (
        vec![q1.clone(), q3.clone(), q4, q5.clone()],
        vec![q1.clone(), q3, q5.clone()],
        vec![q1, q2, q5],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_core::solvers::exact;
    use delprop_hypergraph::{gyo, Hypergraph};
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_views_have_paper_sizes() {
        let db = fig1_db();
        let q4 = fig1_q4(&db);
        let view = delprop_query::View::materialize(&db, &q4).unwrap();
        assert_eq!(view.len(), 7);
        let q3 = fig1_q3(&db);
        let view = delprop_query::View::materialize(&db, &q3).unwrap();
        assert_eq!(view.len(), 6);
    }

    #[test]
    fn fig1_worked_example_optimum() {
        let p = fig1_problem();
        let out = exact::solve(p.compiled(), ExactConfig::default());
        assert_eq!(out.cost, 1.0, "the paper's minimum view side-effect");
    }

    #[test]
    fn fig2_optimum_is_one_red() {
        let rb = fig2_redblue();
        let r = delprop_setcover::exact::solve(&rb, ExactConfig::default());
        assert_eq!(r.cost, 1.0);
    }

    #[test]
    fn fig3_classification_matches_paper() {
        let (s1, s2, s3) = fig3_query_sets();
        let h = |edges: Vec<Vec<usize>>| Hypergraph::new(4, edges);
        assert!(!gyo::is_hypertree(&h(s1)));
        assert!(gyo::is_hypertree(&h(s2)));
        assert!(gyo::is_hypertree(&h(s3)));
    }
}
