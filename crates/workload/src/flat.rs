//! Out-of-core flat instance format ("DPF1").
//!
//! EX-SHARD's 10⁶–10⁷-tuple instances do not fit the normal
//! `Database → Problem → CompiledInstance` path comfortably: the
//! relational layer materializes every tuple, every view tuple, and
//! every witness pointer in resident memory before the solver sees the
//! first row. The flat format sidesteps that pipeline for synthetic
//! scale runs: a [`FlatWriter`] streams incidence rows to disk in O(1)
//! resident memory per record, and a [`FlatReader`] maps the file back
//! read-only (via `mmap(2)` on unix, a plain read elsewhere) so the
//! out-of-core driver can union-find components and
//! [`CompiledInstance::synthesize`] one component at a time without
//! ever holding the whole instance in RAM.
//!
//! [`CompiledInstance::synthesize`]: delprop_core::ir::CompiledInstance::synthesize
//!
//! ## Layout
//!
//! Everything is little-endian `u64` words, so every field of a
//! page-aligned mapping is naturally aligned:
//!
//! ```text
//! header  : magic "DPF1\0\0\0\0" | num_bases | num_demands
//!           | num_vulnerable | num_entries | reserved(=0)
//! records : kind (0 = demand, 1 = vulnerable) | weight (f64 bits)
//!           | len | len × base id
//! ```
//!
//! Records may interleave demands and vulnerable rows freely — the
//! generator emits them component by component — and the header counts
//! are back-patched by [`FlatWriter::finish`] with a single seek.

use crate::rng::SplitMix64;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// `"DPF1"` followed by four zero bytes, as a little-endian word.
pub const MAGIC: u64 = u64::from_le_bytes(*b"DPF1\0\0\0\0");

/// Header size in bytes (6 words).
pub const HEADER_BYTES: usize = 48;

const KIND_DEMAND: u64 = 0;
const KIND_VULNERABLE: u64 = 1;

/// Streaming writer: emits one record at a time through a buffered
/// file handle, so resident memory stays O(longest single row) no
/// matter how many rows the instance has.
pub struct FlatWriter {
    out: BufWriter<File>,
    num_bases: u64,
    num_demands: u64,
    num_vulnerable: u64,
    num_entries: u64,
}

impl FlatWriter {
    /// Create `path` (truncating) and reserve the header.
    pub fn create(path: &Path) -> io::Result<FlatWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        // Placeholder header; `finish` patches the real counts in.
        out.write_all(&[0u8; HEADER_BYTES])?;
        Ok(FlatWriter {
            out,
            num_bases: 0,
            num_demands: 0,
            num_vulnerable: 0,
            num_entries: 0,
        })
    }

    fn record(&mut self, kind: u64, weight: f64, ids: &[u64]) -> io::Result<()> {
        self.out.write_all(&kind.to_le_bytes())?;
        self.out.write_all(&weight.to_bits().to_le_bytes())?;
        self.out.write_all(&(ids.len() as u64).to_le_bytes())?;
        for &id in ids {
            self.num_bases = self.num_bases.max(id + 1);
            self.out.write_all(&id.to_le_bytes())?;
        }
        self.num_entries += ids.len() as u64;
        Ok(())
    }

    /// Append a demand row (witness base ids; weight is informational).
    pub fn demand(&mut self, weight: f64, ids: &[u64]) -> io::Result<()> {
        self.num_demands += 1;
        self.record(KIND_DEMAND, weight, ids)
    }

    /// Append a vulnerable row (candidate-witness base ids + weight).
    pub fn vulnerable(&mut self, weight: f64, ids: &[u64]) -> io::Result<()> {
        self.num_vulnerable += 1;
        self.record(KIND_VULNERABLE, weight, ids)
    }

    /// Flush, back-patch the header, and sync the counts to disk.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(0))?;
        let header = [
            MAGIC,
            self.num_bases,
            self.num_demands,
            self.num_vulnerable,
            self.num_entries,
            0,
        ];
        for word in header {
            file.write_all(&word.to_le_bytes())?;
        }
        file.flush()
    }
}

/// The bytes backing a [`FlatReader`]: a read-only `mmap(2)` on unix,
/// an owned buffer otherwise (and for empty files, which `mmap` rejects).
enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::os::raw::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapped variant is a private read-only mapping (PROT_READ,
// MAP_PRIVATE) that no other part of the process writes through; the
// owned variant is a plain Vec. Either way the bytes are immutable for
// the lifetime of the value, so sharing across threads is sound.
unsafe impl Send for Backing {}
// SAFETY: same argument — all access is through `&self` reads of
// immutable bytes.
unsafe impl Sync for Backing {}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: `ptr` came from a successful mmap of exactly `len`
            // bytes and stays mapped until `Drop` calls munmap, so the
            // slice is valid for the borrow's lifetime.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Backing::Owned(v) => v,
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = *self {
            // SAFETY: `ptr`/`len` describe a live mapping created by
            // mmap in `map_file`; unmapping it exactly once here is the
            // required cleanup.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(unix)]
fn map_file(file: &File, len: usize) -> Option<Backing> {
    use std::os::unix::io::AsRawFd;
    if len == 0 {
        return None;
    }
    // SAFETY: a fresh read-only private mapping of `len` bytes over an
    // open fd; the result is checked against MAP_FAILED before use, and
    // the kernel keeps the mapping alive even after the fd closes.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == sys::MAP_FAILED {
        return None;
    }
    Some(Backing::Mapped { ptr, len })
}

/// One incidence row of a flat instance.
#[derive(Debug, Clone, Copy)]
pub struct FlatRow<'a> {
    /// `false` for a demand row, `true` for a vulnerable row.
    pub vulnerable: bool,
    /// Row weight (only meaningful for vulnerable rows).
    pub weight: f64,
    /// Byte offset of this record's `kind` word within the file —
    /// stable across scans, so a first pass can remember rows and a
    /// second pass can jump straight back to them via [`FlatReader::row_at`].
    pub offset: usize,
    ids: &'a [u8],
}

impl<'a> FlatRow<'a> {
    /// Number of base ids in the row.
    pub fn len(&self) -> usize {
        self.ids.len() / 8
    }

    /// True iff the row references no bases.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `i`-th base id.
    pub fn id(&self, i: usize) -> u64 {
        let at = i * 8;
        u64::from_le_bytes(self.ids[at..at + 8].try_into().unwrap())
    }

    /// All base ids, decoded in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        let bytes = self.ids;
        (0..bytes.len() / 8)
            .map(move |i| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap()))
    }
}

/// Read-only view of a flat instance file.
pub struct FlatReader {
    backing: Backing,
    num_bases: u64,
    num_demands: u64,
    num_vulnerable: u64,
}

fn word(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

impl FlatReader {
    /// Open `path`, preferring an `mmap` so scans stream pages through
    /// the OS cache instead of resident heap.
    pub fn open(path: &Path) -> io::Result<FlatReader> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        let backing = match map_file(&file, len) {
            Some(b) => b,
            None => {
                let mut buf = Vec::with_capacity(len);
                file.read_to_end(&mut buf)?;
                Backing::Owned(buf)
            }
        };
        #[cfg(not(unix))]
        let backing = {
            let mut buf = Vec::with_capacity(len);
            file.read_to_end(&mut buf)?;
            Backing::Owned(buf)
        };
        let bytes = backing.bytes();
        if bytes.len() < HEADER_BYTES || word(bytes, 0) != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DPF1 flat instance",
            ));
        }
        let reader = FlatReader {
            num_bases: word(bytes, 8),
            num_demands: word(bytes, 16),
            num_vulnerable: word(bytes, 24),
            backing,
        };
        let entries = word(reader.backing.bytes(), 32);
        let rows = reader.num_demands + reader.num_vulnerable;
        let expect = HEADER_BYTES as u64 + rows * 24 + entries * 8;
        if reader.backing.bytes().len() as u64 != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "DPF1 length does not match header counts",
            ));
        }
        Ok(reader)
    }

    /// One more than the largest base id referenced by any row.
    pub fn num_bases(&self) -> usize {
        self.num_bases as usize
    }

    /// Number of demand rows.
    pub fn num_demands(&self) -> usize {
        self.num_demands as usize
    }

    /// Number of vulnerable rows.
    pub fn num_vulnerable(&self) -> usize {
        self.num_vulnerable as usize
    }

    /// Decode the record starting at byte `offset`.
    pub fn row_at(&self, offset: usize) -> FlatRow<'_> {
        let bytes = self.backing.bytes();
        let kind = word(bytes, offset);
        let weight = f64::from_bits(word(bytes, offset + 8));
        let len = word(bytes, offset + 16) as usize;
        FlatRow {
            vulnerable: kind == KIND_VULNERABLE,
            weight,
            offset,
            ids: &bytes[offset + 24..offset + 24 + len * 8],
        }
    }

    /// Sequential scan over every row. Cheap to call repeatedly: each
    /// scan walks the mapping front to back.
    pub fn rows(&self) -> impl Iterator<Item = FlatRow<'_>> {
        let bytes = self.backing.bytes();
        let total = (self.num_demands + self.num_vulnerable) as usize;
        let mut offset = HEADER_BYTES;
        (0..total).map(move |_| {
            let row = self.row_at(offset);
            offset = row.offset + 24 + row.len() * 8;
            let _ = bytes;
            row
        })
    }
}

/// Stream a `components`-component synthetic instance to `path`:
/// component `c` owns the contiguous base-id range
/// `[c·bases_per, (c+1)·bases_per)`, and every row draws its ids from
/// its own component's range only, so the file union-finds into exactly
/// the generated component structure (each component's rows share a
/// hub base so the component cannot fragment). Resident memory is
/// O(row length) — nothing is buffered beyond the `BufWriter`.
///
/// Returns the total number of base tuples (`components × bases_per`).
pub fn write_disjoint(
    path: &Path,
    components: usize,
    bases_per: usize,
    demands_per: usize,
    vulnerable_per: usize,
    row_len: usize,
    seed: u64,
) -> io::Result<u64> {
    assert!(bases_per >= row_len && row_len >= 1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut writer = FlatWriter::create(path)?;
    let mut ids = vec![0u64; row_len];
    for c in 0..components {
        let lo = (c * bases_per) as u64;
        let draw = |rng: &mut SplitMix64, ids: &mut [u64]| {
            // A shared hub (the component's first base) keeps every row
            // of the component in one union-find class.
            ids[0] = lo;
            for slot in ids.iter_mut().skip(1) {
                *slot = lo + 1 + rng.below(bases_per - 1) as u64;
            }
            ids.sort_unstable();
        };
        for _ in 0..demands_per {
            draw(&mut rng, &mut ids);
            writer.demand(1.0, &ids)?;
        }
        for _ in 0..vulnerable_per {
            draw(&mut rng, &mut ids);
            let weight = rng.range_inclusive(1, 4) as f64;
            writer.vulnerable(weight, &ids)?;
        }
    }
    writer.finish()?;
    Ok((components * bases_per) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("delprop-flat-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("roundtrip");
        let mut w = FlatWriter::create(&path).unwrap();
        w.demand(1.0, &[0, 2, 5]).unwrap();
        w.vulnerable(3.5, &[2, 7]).unwrap();
        w.demand(1.0, &[1]).unwrap();
        w.finish().unwrap();

        let r = FlatReader::open(&path).unwrap();
        assert_eq!(r.num_bases(), 8);
        assert_eq!(r.num_demands(), 2);
        assert_eq!(r.num_vulnerable(), 1);
        let rows: Vec<_> = r.rows().collect();
        assert_eq!(rows.len(), 3);
        assert!(!rows[0].vulnerable);
        assert_eq!(rows[0].iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert!(rows[1].vulnerable);
        assert_eq!(rows[1].weight, 3.5);
        assert_eq!(rows[1].iter().collect::<Vec<_>>(), vec![2, 7]);
        assert_eq!(rows[2].id(0), 1);
        // Offsets allow random re-access after a scan.
        let again = r.row_at(rows[1].offset);
        assert!(again.vulnerable);
        assert_eq!(again.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a flat instance at all....................").unwrap();
        assert!(FlatReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("truncated");
        let mut w = FlatWriter::create(&path).unwrap();
        w.demand(1.0, &[0, 1, 2]).unwrap();
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(FlatReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disjoint_generator_is_component_separable() {
        let path = tmp("disjoint");
        let n = write_disjoint(&path, 3, 16, 4, 6, 3, 9).unwrap();
        assert_eq!(n, 48);
        let r = FlatReader::open(&path).unwrap();
        assert_eq!(r.num_demands(), 12);
        assert_eq!(r.num_vulnerable(), 18);
        assert!(r.num_bases() <= 48);
        // Every row stays inside its component's id range and rows
        // cover all three ranges.
        let mut seen = [false; 3];
        for row in r.rows() {
            let comp = (row.id(0) / 16) as usize;
            seen[comp] = true;
            assert!(row.iter().all(|id| id / 16 == comp as u64));
            assert!(row.len() == 3);
        }
        assert_eq!(seen, [true; 3]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deterministic_across_writes() {
        let (a, b) = (tmp("det-a"), tmp("det-b"));
        write_disjoint(&a, 2, 32, 5, 5, 4, 123).unwrap();
        write_disjoint(&b, 2, 32, 5, 5, 4, 123).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }
}
