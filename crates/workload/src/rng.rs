//! A small, seeded, in-tree PRNG so the workspace builds with zero
//! external dependencies (hermetic/offline environments cannot resolve
//! crates.io). SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is the
//! standard seeding generator: one 64-bit state word, full period 2^64,
//! and excellent statistical quality for workload generation. All
//! generators in this crate are deterministic functions of their seed.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment; also used as a seed-stream separator by
/// callers that derive several independent streams from one seed.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl SplitMix64 {
    /// Seed the generator. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, n)`. `n` must be positive.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `n / 2^64`, far below anything observable at workload sizes.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is an empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128 * span) >> 64) as i64
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the same construction as rand's
        // `gen::<f64>()`.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, from the published SplitMix64
        // reference implementation.
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 0x599e_d017_fb08_fc85);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = r.below(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 200 draws");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..200 {
            let x = r.range_inclusive(1, 5);
            assert!((1..=5).contains(&x));
            lo_seen |= x == 1;
            hi_seen |= x == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes_and_rate() {
        let mut r = SplitMix64::seed_from_u64(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..2000).filter(|_| r.chance(0.3)).count();
        assert!((400..=800).contains(&hits), "0.3 rate wildly off: {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..20).collect::<Vec<_>>(),
            "identity shuffle is astronomically unlikely"
        );
    }
}
