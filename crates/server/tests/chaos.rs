//! Chaos harness for the serving daemon (the ISSUE 6 acceptance bar).
//!
//! A daemon whose portfolio mixes panicking, stalling, transiently
//! failing, and corrupt members with one healthy solver is hammered by
//! 32 open-loop clients across 8 tenants. The invariants under that
//! load:
//!
//! 1. **Zero protocol corruption** — every frame parses, and every
//!    response is one of the three well-formed outcomes: `ok` with a
//!    labeled guarantee and a non-empty verified solution,
//!    `overloaded`, or `deadline_exceeded`. Never `error`, never a
//!    torn frame.
//! 2. **No stuck requests** — every fired request gets its response
//!    within the socket read timeout, and inflight drains back to
//!    zero once the load stops.
//! 3. **Health liveness** — a concurrent prober's health requests keep
//!    answering throughout the storm (health bypasses admission).
//! 4. **Prompt shutdown** — the daemon tears down within a bounded
//!    wall clock afterwards.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use delprop_core::runtime::solver::GreedySolver;
use delprop_core::runtime::{now, FaultMode, FaultySolver, Portfolio};
use delprop_core::solvers::local_search::Objective;
use delprop_server::{
    AdmissionConfig, Client, Daemon, InstanceSpec, Request, Response, ServerConfig, SolveRequest,
};

const CLIENTS: usize = 32;
const TENANTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 6;

/// Panic + stall + transient + corrupt racing against one healthy
/// greedy member. The healthy member should win most races; the
/// faulty ones exercise panic containment, cancellation at deadline,
/// the retry path, and verification rejecting corrupt output.
fn chaos_portfolio(objective: Objective) -> Portfolio {
    match objective {
        Objective::Standard => Portfolio::new(Objective::Standard)
            .with(FaultySolver::new(GreedySolver, FaultMode::Panic))
            .with(FaultySolver::new(GreedySolver, FaultMode::Stall))
            .with(FaultySolver::new(
                GreedySolver,
                FaultMode::Transient { fail_count: 2 },
            ))
            .with(FaultySolver::new(GreedySolver, FaultMode::Corrupt))
            .with(GreedySolver),
        Objective::Balanced => Portfolio::balanced(),
    }
}

fn chaos_config() -> ServerConfig {
    let mut cfg = ServerConfig {
        initial: InstanceSpec::Fig1,
        initial_label: "fig1".to_string(),
        ..ServerConfig::default()
    };
    cfg.admission = AdmissionConfig {
        max_inflight: 4,
        max_per_tenant: 2,
        max_queued: 8,
        max_wait: Duration::from_millis(100),
    };
    cfg.engine.default_deadline_ms = 400;
    cfg.engine.max_retries = 3;
    cfg.portfolio = Arc::new(chaos_portfolio);
    cfg
}

#[derive(Default)]
struct Tally {
    ok: usize,
    overloaded: usize,
    deadline: usize,
}

#[test]
fn chaos_storm_yields_only_well_formed_responses() {
    let mut daemon = Daemon::spawn(chaos_config()).expect("spawn");
    let addr = daemon.tcp_addr().expect("tcp daemon");

    let tally = Mutex::new(Tally::default());
    let storm_over = Mutex::new(false);

    std::thread::scope(|s| {
        // Health prober: health must answer throughout the storm.
        let prober = s.spawn(|| {
            let mut client = Client::connect_tcp(addr).expect("prober connect");
            client
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut probes = 0usize;
            loop {
                match client.request(&Request::Health) {
                    Ok(Response::Health { epoch: 1, .. }) => probes += 1,
                    Ok(other) => panic!("prober: unexpected {other:?}"),
                    Err(e) => panic!("health went dark mid-storm: {e}"),
                }
                if *storm_over.lock().unwrap() {
                    return probes;
                }
                std::thread::yield_now();
            }
        });

        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let tally = &tally;
                s.spawn(move || {
                    let mut client = Client::connect_tcp(addr)
                        .unwrap_or_else(|e| panic!("client {c} connect: {e}"));
                    // A response that never arrives is a harness
                    // failure, not a hang.
                    client
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let tenant = format!("tenant-{}", c % TENANTS);
                    // Open loop: fire the whole burst, then drain.
                    for _ in 0..REQUESTS_PER_CLIENT {
                        client
                            .send(&Request::Solve(SolveRequest {
                                tenant: tenant.clone(),
                                ..SolveRequest::default()
                            }))
                            .unwrap_or_else(|e| panic!("client {c} send: {e}"));
                    }
                    for k in 0..REQUESTS_PER_CLIENT {
                        let resp = client
                            .recv()
                            .unwrap_or_else(|e| panic!("client {c} response {k}: {e}"));
                        let mut t = tally.lock().unwrap();
                        match resp {
                            Response::Ok(ok) => {
                                assert!(
                                    ok.guarantee == "exact"
                                        || ok.guarantee == "heuristic"
                                        || ok.guarantee.starts_with("ratio"),
                                    "unlabeled guarantee {:?}",
                                    ok.guarantee
                                );
                                assert!(!ok.deleted.is_empty(), "ok with empty solution");
                                assert!(ok.cost.is_finite());
                                assert_eq!(ok.epoch, 1);
                                t.ok += 1;
                            }
                            Response::Overloaded { reason } => {
                                assert!(!reason.is_empty());
                                t.overloaded += 1;
                            }
                            Response::DeadlineExceeded { .. } => t.deadline += 1,
                            other => panic!("client {c} response {k}: ill-formed {other:?}"),
                        }
                    }
                })
            })
            .collect();

        for c in clients {
            c.join().expect("client thread");
        }
        *storm_over.lock().unwrap() = true;
        let probes = prober.join().expect("prober thread");
        assert!(probes > 0, "prober never got a health response");
    });

    let t = tally.into_inner().unwrap();
    assert_eq!(
        t.ok + t.overloaded + t.deadline,
        CLIENTS * REQUESTS_PER_CLIENT,
        "every fired request must be answered"
    );
    // The healthy member wins races even with chaos around it.
    assert!(t.ok > 0, "not a single request succeeded: {:?}", t.ok);

    // Inflight drains to zero once the storm stops.
    let mut client = Client::connect_tcp(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let drain_deadline = now() + Duration::from_secs(10);
    loop {
        match client.request(&Request::Health).expect("health") {
            Response::Health { inflight: 0, .. } => break,
            Response::Health { .. } => {
                assert!(now() < drain_deadline, "inflight never drained to zero");
                std::thread::yield_now();
            }
            other => panic!("expected health, got {other:?}"),
        }
    }

    // Stats stayed coherent: the counters saw the storm.
    match client.request(&Request::Stats).expect("stats") {
        Response::Stats { metrics } => {
            assert!(metrics.contains("serve.requests "), "{metrics}");
            assert!(metrics.contains("serve.ok "), "{metrics}");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Prompt shutdown after the chaos.
    let start = now();
    daemon.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown took {:?}",
        start.elapsed()
    );
}
