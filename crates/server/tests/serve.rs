//! Integration tests for the daemon: wire protocol round trips over a
//! real socket, admission shedding, epoch publishes under traffic,
//! and orderly shutdown with a stalled member in flight.

use std::sync::Arc;
use std::time::Duration;

use delprop_core::runtime::solver::GreedySolver;
use delprop_core::runtime::{FaultMode, FaultySolver, Portfolio};
use delprop_core::solvers::local_search::Objective;
use delprop_server::{
    Bind, Client, Daemon, InstanceSpec, Request, Response, ServerConfig, SolveRequest,
};

fn fig1_config() -> ServerConfig {
    ServerConfig {
        initial: InstanceSpec::Fig1,
        initial_label: "fig1".to_string(),
        ..ServerConfig::default()
    }
}

fn connect(daemon: &Daemon) -> Client {
    let client = Client::connect_tcp(daemon.tcp_addr().expect("tcp daemon")).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    client
}

#[test]
fn health_solve_stats_epoch_roundtrip() {
    let daemon = Daemon::spawn(fig1_config()).expect("spawn");
    let mut client = connect(&daemon);

    match client.request(&Request::Health).expect("health") {
        Response::Health { epoch, label, .. } => {
            assert_eq!(epoch, 1);
            assert_eq!(label, "fig1");
        }
        other => panic!("expected health, got {other:?}"),
    }

    match client
        .request(&Request::Solve(SolveRequest::default()))
        .expect("solve")
    {
        Response::Ok(ok) => {
            assert_eq!(ok.epoch, 1);
            assert!(!ok.deleted.is_empty());
            assert!(!ok.degraded);
            assert!(
                ok.guarantee == "exact"
                    || ok.guarantee == "heuristic"
                    || ok.guarantee.starts_with("ratio"),
                "unlabeled guarantee {:?}",
                ok.guarantee
            );
        }
        other => panic!("expected ok, got {other:?}"),
    }

    match client.request(&Request::Stats).expect("stats") {
        Response::Stats { metrics } => {
            assert!(metrics.contains("serve.requests "), "{metrics}");
            assert!(metrics.contains("budget.ticks "), "{metrics}");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    match client.request(&Request::Epoch).expect("epoch") {
        Response::Epoch { epoch, label } => {
            assert_eq!(epoch, 1);
            assert_eq!(label, "fig1");
        }
        other => panic!("expected epoch, got {other:?}"),
    }
}

#[test]
fn balanced_objective_is_served() {
    let daemon = Daemon::spawn(fig1_config()).expect("spawn");
    let mut client = connect(&daemon);
    let req = SolveRequest {
        objective: Objective::Balanced,
        ..SolveRequest::default()
    };
    match client.request(&Request::Solve(req)).expect("solve") {
        Response::Ok(ok) => assert!(ok.cost.is_finite()),
        other => panic!("expected ok, got {other:?}"),
    }
}

#[test]
fn malformed_requests_get_typed_errors_and_the_connection_survives() {
    use delprop_server::wire::{read_frame, write_frame};

    let daemon = Daemon::spawn(fig1_config()).expect("spawn");
    let mut stream = std::net::TcpStream::connect(daemon.tcp_addr().unwrap()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // An unknown op is an application-level error; framing is intact,
    // so the connection keeps serving.
    write_frame(&mut stream, br#"{"op":"explode"}"#).unwrap();
    let frame = read_frame(&mut stream).unwrap().unwrap();
    match Response::from_bytes(&frame).unwrap() {
        Response::Error { message } => assert!(message.contains("unknown op"), "{message}"),
        other => panic!("expected error, got {other:?}"),
    }

    // Unparseable bytes in a well-formed frame: same story.
    write_frame(&mut stream, b"not json at all").unwrap();
    let frame = read_frame(&mut stream).unwrap().unwrap();
    match Response::from_bytes(&frame).unwrap() {
        Response::Error { message } => assert!(message.contains("bad request"), "{message}"),
        other => panic!("expected error, got {other:?}"),
    }

    // And the connection still answers real requests afterwards.
    write_frame(&mut stream, &Request::Health.to_bytes()).unwrap();
    let frame = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(
        Response::from_bytes(&frame).unwrap(),
        Response::Health { .. }
    ));
}

#[test]
fn admission_sheds_when_slots_are_stalled() {
    // One slot, no queue; a stalling portfolio holds it for the whole
    // deadline, so a concurrent request must shed with `overloaded`.
    let mut cfg = fig1_config();
    cfg.admission.max_inflight = 1;
    cfg.admission.max_per_tenant = 1;
    cfg.admission.max_queued = 0;
    cfg.admission.max_wait = Duration::from_millis(50);
    cfg.engine.default_deadline_ms = 1_500;
    cfg.engine.max_retries = 0;
    cfg.engine.grace_ticks = 0;
    cfg.portfolio = Arc::new(|_| {
        Portfolio::new(Objective::Standard).with(FaultySolver::new(GreedySolver, FaultMode::Stall))
    });
    let daemon = Daemon::spawn(cfg).expect("spawn");

    let mut stuck = connect(&daemon);
    stuck
        .send(&Request::Solve(SolveRequest::default()))
        .expect("send");
    // Wait until the stalled solve holds the only slot.
    let mut probe = connect(&daemon);
    loop {
        match probe.request(&Request::Health).expect("health") {
            Response::Health { inflight: 1, .. } => break,
            Response::Health { .. } => std::thread::yield_now(),
            other => panic!("expected health, got {other:?}"),
        }
    }

    let mut shed = connect(&daemon);
    match shed
        .request(&Request::Solve(SolveRequest {
            tenant: "other".to_string(),
            ..SolveRequest::default()
        }))
        .expect("solve")
    {
        Response::Overloaded { reason } => {
            assert!(!reason.is_empty(), "shed reason must be stated");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // The stalled request itself resolves by deadline (stall polls the
    // budget), as deadline_exceeded with zero grace.
    match stuck.recv().expect("stuck response") {
        Response::DeadlineExceeded { .. } => {}
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
}

#[test]
fn tenant_saturation_sheds_only_that_tenant() {
    let mut cfg = fig1_config();
    cfg.admission.max_inflight = 8;
    cfg.admission.max_per_tenant = 1;
    cfg.admission.max_queued = 0;
    cfg.engine.default_deadline_ms = 1_500;
    cfg.engine.max_retries = 0;
    cfg.engine.grace_ticks = 0;
    cfg.portfolio = Arc::new(|_| {
        Portfolio::new(Objective::Standard).with(FaultySolver::new(GreedySolver, FaultMode::Stall))
    });
    let daemon = Daemon::spawn(cfg).expect("spawn");

    let mut holder = connect(&daemon);
    holder
        .send(&Request::Solve(SolveRequest {
            tenant: "a".to_string(),
            ..SolveRequest::default()
        }))
        .expect("send");
    let mut probe = connect(&daemon);
    loop {
        match probe.request(&Request::Health).expect("health") {
            Response::Health { inflight, .. } if inflight >= 1 => break,
            Response::Health { .. } => std::thread::yield_now(),
            other => panic!("expected health, got {other:?}"),
        }
    }

    // Same tenant: shed immediately with the tenant named.
    let mut same = connect(&daemon);
    match same
        .request(&Request::Solve(SolveRequest {
            tenant: "a".to_string(),
            ..SolveRequest::default()
        }))
        .expect("solve")
    {
        Response::Overloaded { reason } => assert!(reason.contains("tenant"), "{reason}"),
        other => panic!("expected overloaded, got {other:?}"),
    }
    // Different tenant: admitted (its stall then rides to deadline).
    let mut other_tenant = connect(&daemon);
    match other_tenant
        .request(&Request::Solve(SolveRequest {
            tenant: "b".to_string(),
            ..SolveRequest::default()
        }))
        .expect("solve")
    {
        Response::DeadlineExceeded { .. } => {}
        other => panic!("expected deadline_exceeded for tenant b, got {other:?}"),
    }
    let _ = holder.recv();
}

#[test]
fn publish_during_traffic_moves_the_epoch_without_breaking_solves() {
    let daemon = Daemon::spawn(fig1_config()).expect("spawn");
    let addr = daemon.tcp_addr().unwrap();

    std::thread::scope(|s| {
        // Four workers hammer solve while the main thread republishes.
        let workers: Vec<_> = (0..4)
            .map(|w| {
                s.spawn(move || {
                    let mut client = Client::connect_tcp(addr).expect("connect");
                    client
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut epochs = Vec::new();
                    for k in 0..10 {
                        match client
                            .request(&Request::Solve(SolveRequest {
                                tenant: format!("w{w}"),
                                deadline_ms: Some(5_000),
                                ..SolveRequest::default()
                            }))
                            .unwrap_or_else(|e| panic!("worker {w} req {k}: {e}"))
                        {
                            Response::Ok(ok) => {
                                assert!(!ok.deleted.is_empty());
                                epochs.push(ok.epoch);
                            }
                            Response::Overloaded { .. } | Response::DeadlineExceeded { .. } => {}
                            other => panic!("worker {w}: unexpected {other:?}"),
                        }
                    }
                    epochs
                })
            })
            .collect();

        let mut publisher = Client::connect_tcp(addr).expect("connect");
        publisher
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        for seed in 2..6u64 {
            match publisher
                .request(&Request::Publish {
                    label: format!("forest-{seed}"),
                    spec: InstanceSpec::Forest {
                        levels: 3,
                        window: 2,
                        chains: 4,
                        delete_fraction: 0.25,
                        weighted: false,
                        seed,
                    },
                })
                .expect("publish")
            {
                Response::Published { epoch, label } => {
                    assert!(epoch >= 2);
                    assert_eq!(label, format!("forest-{seed}"));
                }
                other => panic!("expected published, got {other:?}"),
            }
        }

        for w in workers {
            let epochs = w.join().expect("worker");
            // Epochs a worker observed never move backwards: snapshots
            // are taken per request from a monotone cell.
            for pair in epochs.windows(2) {
                assert!(pair[0] <= pair[1], "epoch went backwards: {epochs:?}");
            }
            for e in epochs {
                assert!((1..=5).contains(&e), "epoch {e} out of range");
            }
        }
    });

    assert_eq!(daemon.epoch(), 5);
}

#[test]
fn shutdown_with_a_stalled_request_is_prompt_and_orderly() {
    let mut cfg = fig1_config();
    cfg.engine.default_deadline_ms = 30_000; // the stall would run for ages...
    cfg.engine.max_retries = 0;
    cfg.engine.grace_ticks = 0;
    cfg.portfolio = Arc::new(|_| {
        Portfolio::new(Objective::Standard).with(FaultySolver::new(GreedySolver, FaultMode::Stall))
    });
    let mut daemon = Daemon::spawn(cfg).expect("spawn");
    let mut client = connect(&daemon);
    client
        .send(&Request::Solve(SolveRequest::default()))
        .expect("send");
    // Wait until the stall is actually in flight.
    let mut probe = connect(&daemon);
    loop {
        match probe.request(&Request::Health).expect("health") {
            Response::Health { inflight, .. } if inflight >= 1 => break,
            Response::Health { .. } => std::thread::yield_now(),
            other => panic!("expected health, got {other:?}"),
        }
    }

    // ...but shutdown cancels it pool-wide and joins everything
    // within a bounded wall clock.
    let start = delprop_core::runtime::now();
    daemon.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown took {:?}",
        start.elapsed()
    );
    // The stalled request resolved with a typed response (cancelled)
    // or the connection closed — never a hang, never a corrupt frame.
    match client.recv() {
        Ok(Response::Error { message }) => assert!(message.contains("cancelled"), "{message}"),
        Ok(other) => panic!("unexpected response {other:?}"),
        Err(_) => {} // connection closed during shutdown: acceptable
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("delpropd-test-{}.sock", std::process::id()));
    let mut cfg = fig1_config();
    cfg.bind = Bind::Unix(path.clone());
    let daemon = Daemon::spawn(cfg).expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match client.request(&Request::Health).expect("health") {
        Response::Health { epoch: 1, .. } => {}
        other => panic!("expected health, got {other:?}"),
    }
    match client
        .request(&Request::Solve(SolveRequest::default()))
        .expect("solve")
    {
        Response::Ok(ok) => assert!(!ok.deleted.is_empty()),
        other => panic!("expected ok, got {other:?}"),
    }
    drop(daemon);
    assert!(!path.exists(), "socket file must be cleaned up");
}
