//! The wire protocol: length-prefixed JSON frames and the typed
//! request/response vocabulary.
//!
//! A frame is a `u32` big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Frames are capped at [`MAX_FRAME`] bytes; a
//! peer announcing a larger frame is corrupt (or hostile) and the
//! connection is dropped rather than buffered to death. The JSON layer
//! is [`delprop_json`] — the same sorted-key value type the bench
//! artifacts use — so every response renders deterministically.
//!
//! Both directions are typed end-to-end: [`Request`] / [`Response`]
//! parse *and* render, so the daemon, the [`crate::client`], the chaos
//! harness, and the load generator all speak through one codec and a
//! malformed frame is a typed error, never a panic.

use std::io::{self, Read, Write};
use std::time::Duration;

use delprop_core::solvers::local_search::Objective;
use delprop_json::{parse, Json};

use crate::state::InstanceSpec;

/// Maximum frame payload size (1 MiB).
pub const MAX_FRAME: u32 = 1 << 20;

// -------------------------------------------------------------------
// Framing
// -------------------------------------------------------------------

/// Write one frame: `u32` big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Blocking read of one frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary; EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        // lint:allow(panic): `got < 4` is the loop condition, so the
        // range start never passes the array length
        let n = r.read(&mut len[got..])?;
        if n == 0 {
            return if got == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            };
        }
        got += n;
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame decoder for the daemon's timeout-tolerant read
/// loop: bytes go in via [`FrameBuffer::extend`] in whatever chunks
/// the socket yields (including partial frames split by read
/// timeouts), complete frames come out of [`FrameBuffer::next_frame`].
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append raw bytes from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one is buffered. `Err` means
    /// the stream is corrupt (oversized frame) and the connection must
    /// be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, String> {
        let &[b0, b1, b2, b3, ..] = self.buf.as_slice() else {
            return Ok(None); // fewer than 4 bytes: no length prefix yet
        };
        let len = u32::from_be_bytes([b0, b1, b2, b3]);
        if len > MAX_FRAME {
            return Err(format!("frame of {len} bytes exceeds MAX_FRAME"));
        }
        let total = 4 + len as usize;
        let Some(frame) = self.buf.get(4..total) else {
            return Ok(None); // body not fully buffered yet
        };
        let frame = frame.to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

// -------------------------------------------------------------------
// Requests
// -------------------------------------------------------------------

/// One deletion-propagation solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Tenant for admission accounting (default `"default"`).
    pub tenant: String,
    /// Extra `ΔV` on top of the published instance's own deletions, as
    /// `(view, index)` pairs. Empty means: solve the instance as
    /// published (which shares its pre-compiled IR across requests).
    pub deletions: Vec<(usize, usize)>,
    /// Which objective's portfolio answers.
    pub objective: Objective,
    /// Wall-clock deadline in milliseconds (server default / cap apply
    /// when absent).
    pub deadline_ms: Option<u64>,
    /// Per-attempt tick budget (default: unlimited; the deadline
    /// governs).
    pub ticks: Option<u64>,
    /// Race the portfolio (default: the server's configured mode).
    pub racing: Option<bool>,
    /// Partition into component shards and solve each through the
    /// work-stealing scheduler (default: the server's configured mode;
    /// wins over `racing` when both are set).
    pub sharded: Option<bool>,
}

impl Default for SolveRequest {
    fn default() -> Self {
        SolveRequest {
            tenant: "default".to_string(),
            deletions: Vec::new(),
            objective: Objective::Standard,
            deadline_ms: None,
            ticks: None,
            racing: None,
            sharded: None,
        }
    }
}

/// Everything a client can ask the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve against the current epoch's instance.
    Solve(SolveRequest),
    /// Build a new instance from `spec` and publish it as the next
    /// epoch. In-flight solves keep their snapshot.
    Publish {
        /// Human-readable instance label reported by `health`/`epoch`.
        label: String,
        /// How to build the instance.
        spec: InstanceSpec,
    },
    /// Patch the current epoch's ΔV incrementally and publish the
    /// result as the next epoch: the daemon forks the epoch's engine,
    /// applies the batch (overdelete → rederive), and publishes —
    /// ΔV-proportional work instead of an instance rebuild. In-flight
    /// solves keep their snapshot.
    PublishDelta {
        /// View tuples entering ΔV, as `(view, index)` pairs.
        deletions: Vec<(usize, usize)>,
        /// View tuples leaving ΔV, as `(view, index)` pairs.
        restores: Vec<(usize, usize)>,
    },
    /// Liveness + epoch + inflight gauge. Bypasses admission.
    Health,
    /// Merged metrics registry dump. Bypasses admission.
    Stats,
    /// Current epoch number and label. Bypasses admission.
    Epoch,
}

impl Request {
    /// Render to the wire JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Solve(s) => {
                let mut pairs = vec![
                    ("op".to_string(), Json::str("solve")),
                    ("tenant".to_string(), Json::str(s.tenant.clone())),
                    (
                        "objective".to_string(),
                        Json::str(objective_label(s.objective)),
                    ),
                ];
                if !s.deletions.is_empty() {
                    pairs.push((
                        "deletions".to_string(),
                        Json::Arr(
                            s.deletions
                                .iter()
                                .map(|&(v, i)| {
                                    Json::Arr(vec![Json::uint(v as u64), Json::uint(i as u64)])
                                })
                                .collect(),
                        ),
                    ));
                }
                if let Some(d) = s.deadline_ms {
                    pairs.push(("deadline_ms".to_string(), Json::uint(d)));
                }
                if let Some(t) = s.ticks {
                    pairs.push(("ticks".to_string(), Json::uint(t)));
                }
                if let Some(r) = s.racing {
                    pairs.push(("racing".to_string(), Json::Bool(r)));
                }
                if let Some(sh) = s.sharded {
                    pairs.push(("sharded".to_string(), Json::Bool(sh)));
                }
                Json::Obj(pairs)
            }
            Request::Publish { label, spec } => Json::obj(vec![
                ("op", Json::str("publish")),
                ("label", Json::str(label.clone())),
                ("spec", spec.to_json()),
            ]),
            Request::PublishDelta {
                deletions,
                restores,
            } => Json::obj(vec![
                ("op", Json::str("publish_delta")),
                ("deletions", pairs_json(deletions)),
                ("restores", pairs_json(restores)),
            ]),
            Request::Health => Json::obj(vec![("op", Json::str("health"))]),
            Request::Stats => Json::obj(vec![("op", Json::str("stats"))]),
            Request::Epoch => Json::obj(vec![("op", Json::str("epoch"))]),
        }
    }

    /// Parse a wire JSON document.
    pub fn from_json(j: &Json) -> Result<Request, String> {
        let op = get_str(j, "op").ok_or("missing string field `op`")?;
        match op {
            "solve" => {
                let mut req = SolveRequest {
                    tenant: get_str(j, "tenant").unwrap_or("default").to_string(),
                    ..SolveRequest::default()
                };
                req.deletions = parse_pairs(j, "deletions")?;
                if let Some(o) = get_str(j, "objective") {
                    req.objective = parse_objective(o)?;
                }
                req.deadline_ms = get_u64(j, "deadline_ms");
                req.ticks = get_u64(j, "ticks");
                req.racing = get_bool(j, "racing");
                req.sharded = get_bool(j, "sharded");
                Ok(Request::Solve(req))
            }
            "publish" => {
                let label = get_str(j, "label").unwrap_or("unnamed").to_string();
                let spec = j.get("spec").ok_or("publish requires a `spec` object")?;
                Ok(Request::Publish {
                    label,
                    spec: InstanceSpec::from_json(spec)?,
                })
            }
            "publish_delta" => Ok(Request::PublishDelta {
                deletions: parse_pairs(j, "deletions")?,
                restores: parse_pairs(j, "restores")?,
            }),
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "epoch" => Ok(Request::Epoch),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Render to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().render().into_bytes()
    }

    /// Parse wire bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("non-UTF-8 frame: {e}"))?;
        Request::from_json(&parse(text)?)
    }
}

// -------------------------------------------------------------------
// Responses
// -------------------------------------------------------------------

/// A successful (possibly degraded) solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOk {
    /// Epoch of the snapshot this answer was computed against.
    pub epoch: u64,
    /// Winning portfolio member (or the degradation fallback).
    pub winner: String,
    /// The guarantee the answer *actually* carries — `"exact"`,
    /// `"ratio <r>"`, or `"heuristic"` — never stronger than what was
    /// verified within the deadline.
    pub guarantee: String,
    /// True when the answer came from budget/deadline degradation
    /// rather than an uncut run.
    pub degraded: bool,
    /// Objective value of the verified solution.
    pub cost: f64,
    /// The deleted base tuples, as `(relation, index)` pairs.
    pub deleted: Vec<(usize, usize)>,
    /// Wall-clock the request spent in the engine, µs.
    pub micros: u64,
    /// Budget ticks charged by the final attempt.
    pub ticks: u64,
    /// Solve attempts made (1 = no retries).
    pub attempts: u32,
}

/// Everything the daemon can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A verified solution with its labeled guarantee.
    Ok(SolveOk),
    /// Admission refused the request (queue full, tenant saturated,
    /// gate closed, or wait timed out).
    Overloaded {
        /// Which admission limit fired.
        reason: String,
    },
    /// The deadline passed and even the degradation fallback produced
    /// no verified answer.
    DeadlineExceeded {
        /// Solve attempts made before giving up.
        attempts: u32,
        /// Wall-clock spent, µs.
        micros: u64,
    },
    /// A typed failure (bad request, permanent solver error, shutdown).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Liveness probe answer.
    Health {
        /// Current epoch.
        epoch: u64,
        /// Current instance label.
        label: String,
        /// Solves currently admitted.
        inflight: u64,
        /// Requests seen since start.
        requests: u64,
    },
    /// Metrics registry dump.
    Stats {
        /// `name value` lines, sorted (core + serving metrics merged).
        metrics: String,
    },
    /// Epoch probe answer.
    Epoch {
        /// Current epoch.
        epoch: u64,
        /// Current instance label.
        label: String,
    },
    /// A publish landed.
    Published {
        /// The new epoch.
        epoch: u64,
        /// Its label.
        label: String,
    },
    /// A delta publish landed, with its maintenance accounting.
    DeltaPublished {
        /// The new epoch.
        epoch: u64,
        /// Its label (inherited from the patched epoch).
        label: String,
        /// Deletions applied (requested minus no-ops).
        deleted: u64,
        /// Restores applied (requested minus no-ops).
        restored: u64,
        /// Preserved view tuples that became vulnerable through the
        /// overdeletion closure.
        overdeleted: u64,
        /// View tuples whose vulnerable status was rederived.
        rederived: u64,
    },
}

impl Response {
    /// Render to the wire JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok(ok) => Json::obj(vec![
                ("status", Json::str("ok")),
                ("epoch", Json::uint(ok.epoch)),
                ("winner", Json::str(ok.winner.clone())),
                ("guarantee", Json::str(ok.guarantee.clone())),
                ("degraded", Json::Bool(ok.degraded)),
                ("cost", Json::Num(ok.cost)),
                (
                    "deleted",
                    Json::Arr(
                        ok.deleted
                            .iter()
                            .map(|&(r, i)| {
                                Json::Arr(vec![Json::uint(r as u64), Json::uint(i as u64)])
                            })
                            .collect(),
                    ),
                ),
                ("micros", Json::uint(ok.micros)),
                ("ticks", Json::uint(ok.ticks)),
                ("attempts", Json::uint(u64::from(ok.attempts))),
            ]),
            Response::Overloaded { reason } => Json::obj(vec![
                ("status", Json::str("overloaded")),
                ("reason", Json::str(reason.clone())),
            ]),
            Response::DeadlineExceeded { attempts, micros } => Json::obj(vec![
                ("status", Json::str("deadline_exceeded")),
                ("attempts", Json::uint(u64::from(*attempts))),
                ("micros", Json::uint(*micros)),
            ]),
            Response::Error { message } => Json::obj(vec![
                ("status", Json::str("error")),
                ("message", Json::str(message.clone())),
            ]),
            Response::Health {
                epoch,
                label,
                inflight,
                requests,
            } => Json::obj(vec![
                ("status", Json::str("health")),
                ("epoch", Json::uint(*epoch)),
                ("label", Json::str(label.clone())),
                ("inflight", Json::uint(*inflight)),
                ("requests", Json::uint(*requests)),
            ]),
            Response::Stats { metrics } => Json::obj(vec![
                ("status", Json::str("stats")),
                ("metrics", Json::str(metrics.clone())),
            ]),
            Response::Epoch { epoch, label } => Json::obj(vec![
                ("status", Json::str("epoch")),
                ("epoch", Json::uint(*epoch)),
                ("label", Json::str(label.clone())),
            ]),
            Response::Published { epoch, label } => Json::obj(vec![
                ("status", Json::str("published")),
                ("epoch", Json::uint(*epoch)),
                ("label", Json::str(label.clone())),
            ]),
            Response::DeltaPublished {
                epoch,
                label,
                deleted,
                restored,
                overdeleted,
                rederived,
            } => Json::obj(vec![
                ("status", Json::str("delta_published")),
                ("epoch", Json::uint(*epoch)),
                ("label", Json::str(label.clone())),
                ("deleted", Json::uint(*deleted)),
                ("restored", Json::uint(*restored)),
                ("overdeleted", Json::uint(*overdeleted)),
                ("rederived", Json::uint(*rederived)),
            ]),
        }
    }

    /// Parse a wire JSON document.
    pub fn from_json(j: &Json) -> Result<Response, String> {
        let status = get_str(j, "status").ok_or("missing string field `status`")?;
        match status {
            "ok" => {
                let mut deleted = Vec::new();
                if let Some(arr) = j.get("deleted").and_then(Json::as_arr) {
                    for d in arr {
                        let [r, i] = d
                            .as_arr()
                            .and_then(|p| <&[Json; 2]>::try_from(p).ok())
                            .ok_or("`deleted` entries must be [relation, index]")?;
                        let r = r.as_num().ok_or("non-numeric relation")?;
                        let i = i.as_num().ok_or("non-numeric index")?;
                        deleted.push((r as usize, i as usize));
                    }
                }
                Ok(Response::Ok(SolveOk {
                    epoch: need_u64(j, "epoch")?,
                    winner: get_str(j, "winner").ok_or("missing `winner`")?.to_string(),
                    guarantee: get_str(j, "guarantee")
                        .ok_or("missing `guarantee`")?
                        .to_string(),
                    degraded: get_bool(j, "degraded").ok_or("missing `degraded`")?,
                    cost: j
                        .get("cost")
                        .and_then(Json::as_num)
                        .ok_or("missing `cost`")?,
                    deleted,
                    micros: need_u64(j, "micros")?,
                    ticks: need_u64(j, "ticks")?,
                    attempts: need_u64(j, "attempts")? as u32,
                }))
            }
            "overloaded" => Ok(Response::Overloaded {
                reason: get_str(j, "reason").unwrap_or_default().to_string(),
            }),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded {
                attempts: need_u64(j, "attempts")? as u32,
                micros: need_u64(j, "micros")?,
            }),
            "error" => Ok(Response::Error {
                message: get_str(j, "message").unwrap_or_default().to_string(),
            }),
            "health" => Ok(Response::Health {
                epoch: need_u64(j, "epoch")?,
                label: get_str(j, "label").unwrap_or_default().to_string(),
                inflight: need_u64(j, "inflight")?,
                requests: need_u64(j, "requests")?,
            }),
            "stats" => Ok(Response::Stats {
                metrics: get_str(j, "metrics").unwrap_or_default().to_string(),
            }),
            "epoch" => Ok(Response::Epoch {
                epoch: need_u64(j, "epoch")?,
                label: get_str(j, "label").unwrap_or_default().to_string(),
            }),
            "published" => Ok(Response::Published {
                epoch: need_u64(j, "epoch")?,
                label: get_str(j, "label").unwrap_or_default().to_string(),
            }),
            "delta_published" => Ok(Response::DeltaPublished {
                epoch: need_u64(j, "epoch")?,
                label: get_str(j, "label").unwrap_or_default().to_string(),
                deleted: need_u64(j, "deleted")?,
                restored: need_u64(j, "restored")?,
                overdeleted: need_u64(j, "overdeleted")?,
                rederived: need_u64(j, "rederived")?,
            }),
            other => Err(format!("unknown status `{other}`")),
        }
    }

    /// Render to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().render().into_bytes()
    }

    /// Parse wire bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("non-UTF-8 frame: {e}"))?;
        Response::from_json(&parse(text)?)
    }
}

// -------------------------------------------------------------------
// Stream abstraction
// -------------------------------------------------------------------

/// The subset of socket behavior the daemon and client need, so TCP
/// and Unix-domain connections share one code path.
pub trait ConnStream: Read + Write + Send {
    /// Set (or clear) the read timeout the daemon's shutdown-aware
    /// read loop relies on.
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Shut down both directions, unblocking any peer reads.
    fn shutdown_both(&self);
}

impl ConnStream for std::net::TcpStream {
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn shutdown_both(&self) {
        let _ = std::net::TcpStream::shutdown(self, std::net::Shutdown::Both);
    }
}

#[cfg(unix)]
impl ConnStream for std::os::unix::net::UnixStream {
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn shutdown_both(&self) {
        let _ = std::os::unix::net::UnixStream::shutdown(self, std::net::Shutdown::Both);
    }
}

// -------------------------------------------------------------------
// JSON field helpers
// -------------------------------------------------------------------

/// Render `(a, b)` pairs as the wire's `[[a, b], ...]` array.
fn pairs_json(pairs: &[(usize, usize)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(a, b)| Json::Arr(vec![Json::uint(a as u64), Json::uint(b as u64)]))
            .collect(),
    )
}

/// Parse an optional `[[a, b], ...]` array field (absent ⇒ empty).
fn parse_pairs(j: &Json, key: &str) -> Result<Vec<(usize, usize)>, String> {
    let mut out = Vec::new();
    if let Some(arr) = j.get(key).and_then(Json::as_arr) {
        for d in arr {
            let [v, i] = d
                .as_arr()
                .and_then(|p| <&[Json; 2]>::try_from(p).ok())
                .ok_or_else(|| format!("`{key}` entries must be [view, index]"))?;
            let v = v
                .as_num()
                .ok_or_else(|| format!("non-numeric view in `{key}`"))?;
            let i = i
                .as_num()
                .ok_or_else(|| format!("non-numeric index in `{key}`"))?;
            out.push((v as usize, i as usize));
        }
    }
    Ok(out)
}

fn get_str<'a>(j: &'a Json, key: &str) -> Option<&'a str> {
    match j.get(key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key).and_then(Json::as_num).map(|n| n as u64)
}

fn need_u64(j: &Json, key: &str) -> Result<u64, String> {
    get_u64(j, key).ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn get_bool(j: &Json, key: &str) -> Option<bool> {
    match j.get(key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Wire label for an objective.
pub fn objective_label(o: Objective) -> &'static str {
    match o {
        Objective::Standard => "standard",
        Objective::Balanced => "balanced",
    }
}

fn parse_objective(s: &str) -> Result<Objective, String> {
    match s {
        "standard" => Ok(Objective::Standard),
        "balanced" => Ok(Objective::Balanced),
        other => Err(format!("unknown objective `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"hello").unwrap();
        write_frame(&mut bytes, b"").unwrap();
        write_frame(&mut bytes, b"world").unwrap();

        // Feed byte-by-byte: the decoder must tolerate arbitrary splits.
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for b in &bytes {
            fb.extend(std::slice::from_ref(b));
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(
            frames,
            vec![b"hello".to_vec(), Vec::new(), b"world".to_vec()]
        );

        let mut r = &bytes[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"world");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected_not_buffered() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME + 1).to_be_bytes());
        assert!(fb.next_frame().is_err());

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut r = &bytes[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"truncated").unwrap();
        bytes.truncate(bytes.len() - 3);
        let mut r = &bytes[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Solve(SolveRequest {
                tenant: "t1".to_string(),
                deletions: vec![(0, 3), (1, 7)],
                objective: Objective::Balanced,
                deadline_ms: Some(250),
                ticks: Some(100_000),
                racing: Some(false),
                sharded: Some(true),
            }),
            Request::Solve(SolveRequest::default()),
            Request::Publish {
                label: "fig1".to_string(),
                spec: InstanceSpec::Fig1,
            },
            Request::PublishDelta {
                deletions: vec![(0, 2), (1, 5)],
                restores: vec![(0, 9)],
            },
            Request::PublishDelta {
                deletions: Vec::new(),
                restores: Vec::new(),
            },
            Request::Health,
            Request::Stats,
            Request::Epoch,
        ];
        for req in reqs {
            let bytes = req.to_bytes();
            assert_eq!(Request::from_bytes(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Ok(SolveOk {
                epoch: 3,
                winner: "greedy".to_string(),
                guarantee: "ratio 1.386".to_string(),
                degraded: true,
                cost: 2.5,
                deleted: vec![(0, 1), (2, 9)],
                micros: 1234,
                ticks: 42,
                attempts: 2,
            }),
            Response::Overloaded {
                reason: "queue full".to_string(),
            },
            Response::DeadlineExceeded {
                attempts: 3,
                micros: 250_000,
            },
            Response::Error {
                message: "bad request".to_string(),
            },
            Response::Health {
                epoch: 1,
                label: "forest-default".to_string(),
                inflight: 4,
                requests: 99,
            },
            Response::Stats {
                metrics: "serve.requests 99\n".to_string(),
            },
            Response::Epoch {
                epoch: 7,
                label: "random-2".to_string(),
            },
            Response::Published {
                epoch: 8,
                label: "random-3".to_string(),
            },
            Response::DeltaPublished {
                epoch: 9,
                label: "random-3".to_string(),
                deleted: 4,
                restored: 1,
                overdeleted: 11,
                rederived: 2,
            },
        ];
        for resp in resps {
            let bytes = resp.to_bytes();
            assert_eq!(Response::from_bytes(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::from_bytes(b"not json").is_err());
        assert!(Request::from_bytes(br#"{"op":"launch_missiles"}"#).is_err());
        assert!(Request::from_bytes(br#"{"noop":true}"#).is_err());
        assert!(Request::from_bytes(br#"{"op":"solve","deletions":[[1]]}"#).is_err());
        assert!(Request::from_bytes(br#"{"op":"publish_delta","restores":[[1,"x"]]}"#).is_err());
        assert!(Request::from_bytes(&[0xff, 0xfe]).is_err());
    }
}
