//! `delpropd`: the daemon itself — listeners, connection threads,
//! request dispatch, and orderly shutdown.
//!
//! One thread accepts connections; each connection gets a thread that
//! decodes frames through a read loop with a short socket timeout, so
//! it observes the shutdown flag within one timeout tick even while a
//! client is idle. Frames on one connection are served sequentially
//! (responses in request order — what the open-loop client counts
//! on); concurrency comes from connections, bounded by the admission
//! [`Gate`].
//!
//! Shutdown is cooperative, in dependency order: close the gate (new
//! solves shed), cancel every in-flight attempt budget pool-wide with
//! cause `"shutdown"` (stalled members included — see
//! `Budget::cancel_all_with_cause`), set the flag, wake the accept
//! loop by connecting to ourselves, then join every thread. No thread
//! is ever killed; everything drains through typed errors.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use delprop_core::runtime::sync::{AtomicBool, AtomicU64, Ordering};
use delprop_core::runtime::{now, EpochCell, Portfolio};
use delprop_core::solvers::local_search::Objective;
use delprop_core::DeltaBatch;
use delprop_query::ViewTupleId;

use crate::admission::{AdmissionConfig, Gate};
use crate::engine::{self, ActiveRequests, EngineConfig, Served};
use crate::state::{InstanceSpec, ServingInstance};
use crate::stats;
use crate::wire::{write_frame, ConnStream, FrameBuffer, Request, Response};

/// How long a connection read blocks before rechecking shutdown.
const READ_TICK: Duration = Duration::from_millis(50);

/// Builds the portfolio answering an objective. Swappable so the
/// chaos harness can inject faulty members into a real daemon.
pub type PortfolioFactory = Arc<dyn Fn(Objective) -> Portfolio + Send + Sync>;

/// Where to listen.
#[derive(Debug, Clone)]
pub enum Bind {
    /// TCP, e.g. `127.0.0.1:0` for an ephemeral port.
    Tcp(String),
    /// Unix-domain socket path (removed and re-created on spawn).
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// Full daemon configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Listener address.
    pub bind: Bind,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// Per-request solve policy.
    pub engine: EngineConfig,
    /// The instance served at epoch 1.
    pub initial: InstanceSpec,
    /// Its label.
    pub initial_label: String,
    /// Portfolio construction (default: the core chains).
    pub portfolio: PortfolioFactory,
    /// Base seed for per-request backoff jitter.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            admission: AdmissionConfig::default(),
            engine: EngineConfig::default(),
            initial: InstanceSpec::default(),
            initial_label: "forest-default".to_string(),
            portfolio: Arc::new(|objective| match objective {
                Objective::Standard => Portfolio::standard(),
                Objective::Balanced => Portfolio::balanced(),
            }),
            seed: 0x5EED_D003,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, std::path::PathBuf),
}

impl Listener {
    fn accept(&self) -> io::Result<Box<dyn ConnStream>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(Box::new(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
        }
    }

    /// Unblock a blocking `accept` by connecting to ourselves.
    fn wake(&self) {
        match self {
            Listener::Tcp(l) => {
                if let Ok(addr) = l.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
            }
            #[cfg(unix)]
            Listener::Unix(_, path) => {
                let _ = std::os::unix::net::UnixStream::connect(path);
            }
        }
    }
}

struct Shared {
    cell: EpochCell<ServingInstance>,
    gate: Gate,
    active: ActiveRequests,
    engine: EngineConfig,
    admission_wait: Duration,
    portfolio: PortfolioFactory,
    shutdown: AtomicBool,
    request_seq: AtomicU64,
    seed: u64,
    /// Serializes snapshot→patch→publish sequences: two concurrent
    /// `publish_delta` requests must not both fork the same epoch, or
    /// the slower one would silently drop the faster one's ΔV.
    publish_lock: Mutex<()>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) // ordering: pairs with the AcqRel swap in shutdown()
    }
}

/// A running daemon; dropping it shuts it down and joins all threads.
pub struct Daemon {
    shared: Arc<Shared>,
    listener: Arc<Listener>,
    tcp_addr: Option<SocketAddr>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Build the initial instance, bind, and start serving.
    pub fn spawn(cfg: ServerConfig) -> io::Result<Daemon> {
        let instance = ServingInstance::build(cfg.initial_label.clone(), &cfg.initial)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let (listener, tcp_addr) = match &cfg.bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let local = l.local_addr()?;
                (Listener::Tcp(l), Some(local))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                (Listener::Unix(l, path.clone()), None)
            }
        };
        let shared = Arc::new(Shared {
            cell: EpochCell::new(instance),
            gate: Gate::new(cfg.admission),
            active: ActiveRequests::new(),
            engine: cfg.engine,
            admission_wait: cfg.admission.max_wait,
            portfolio: cfg.portfolio,
            shutdown: AtomicBool::new(false),
            request_seq: AtomicU64::new(0),
            seed: cfg.seed,
            publish_lock: Mutex::new(()),
        });
        let listener = Arc::new(listener);
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_listener = Arc::clone(&listener);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::spawn(move || {
            loop {
                let stream = match accept_listener.accept() {
                    Ok(s) => s,
                    Err(_) if accept_shared.is_shutdown() => break,
                    Err(_) => continue,
                };
                if accept_shared.is_shutdown() {
                    break; // the wake-up connection (or a late client)
                }
                stats::CONNECTIONS.inc();
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::spawn(move || handle_conn(&conn_shared, stream));
                accept_conns
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
            }
        });

        Ok(Daemon {
            shared,
            listener,
            tcp_addr,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound TCP address (ephemeral ports resolved), if TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Publish a new instance out-of-band (same path as the wire
    /// `publish` op). Returns the new epoch.
    pub fn publish(&self, label: impl Into<String>, spec: &InstanceSpec) -> io::Result<u64> {
        let instance = ServingInstance::build(label, spec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let _publish = self
            .shared
            .publish_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        stats::PUBLISHES.inc();
        Ok(self.shared.cell.publish(instance))
    }

    /// Orderly shutdown: shed, cancel, wake, join. Idempotent.
    pub fn shutdown(&mut self) {
        // ordering: AcqRel — the winning swap publishes everything
        // written before shutdown was requested; losers acquire it and
        // return without re-running the teardown.
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.gate.close();
        self.shared.active.cancel_all_with_cause("shutdown");
        self.listener.wake();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conn_threads.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &*self.listener {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection until EOF, protocol corruption, or shutdown.
fn handle_conn(shared: &Shared, mut stream: Box<dyn ConnStream>) {
    let _ = stream.set_stream_read_timeout(Some(READ_TICK));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete frame already buffered.
        loop {
            match frames.next_frame() {
                Ok(Some(payload)) => {
                    let response = handle_request(shared, &payload);
                    if write_frame(&mut stream, &response.to_bytes()).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(message) => {
                    // Corrupt framing: answer once, then drop the
                    // connection (resync is impossible).
                    let response = Response::Error { message };
                    let _ = write_frame(&mut stream, &response.to_bytes());
                    stream.shutdown_both();
                    return;
                }
            }
        }
        if shared.is_shutdown() {
            stream.shutdown_both();
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // clean EOF
            // lint:allow(panic): io::Read contract — a successful read
            // returns n <= chunk.len()
            Ok(n) => frames.extend(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue; // timeout tick: recheck shutdown
            }
            Err(_) => return,
        }
    }
}

/// Wire `(view, index)` pairs as view-tuple ids.
fn to_ids(pairs: &[(usize, usize)]) -> Vec<ViewTupleId> {
    pairs
        .iter()
        .map(|&(view, index)| ViewTupleId::new(view, index))
        .collect()
}

/// Dispatch one framed request.
fn handle_request(shared: &Shared, payload: &[u8]) -> Response {
    stats::REQUESTS.inc();
    let start = now();
    let response = match Request::from_bytes(payload) {
        Err(message) => {
            stats::REQUESTS_ERROR.inc();
            Response::Error {
                message: format!("bad request: {message}"),
            }
        }
        Ok(Request::Health) => {
            let snap = shared.cell.snapshot();
            Response::Health {
                epoch: snap.epoch(),
                label: snap.label.clone(),
                inflight: shared.gate.inflight() as u64,
                requests: stats::REQUESTS.get(),
            }
        }
        Ok(Request::Epoch) => {
            let snap = shared.cell.snapshot();
            Response::Epoch {
                epoch: snap.epoch(),
                label: snap.label.clone(),
            }
        }
        Ok(Request::Stats) => Response::Stats {
            metrics: stats::render_all(),
        },
        Ok(Request::Publish { label, spec }) => {
            match ServingInstance::build(label.clone(), &spec) {
                Ok(instance) => {
                    let _publish = shared
                        .publish_lock
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    stats::PUBLISHES.inc();
                    let epoch = shared.cell.publish(instance);
                    Response::Published { epoch, label }
                }
                Err(e) => {
                    stats::REQUESTS_ERROR.inc();
                    Response::Error {
                        message: format!("publish failed: {e}"),
                    }
                }
            }
        }
        Ok(Request::PublishDelta {
            deletions,
            restores,
        }) => {
            // Hold the publish lock across snapshot→patch→publish so
            // concurrent delta publishes compose instead of forking
            // the same epoch and losing one batch.
            let _publish = shared
                .publish_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let snap = shared.cell.snapshot();
            let mut engine = snap.engine.clone();
            let batch = DeltaBatch {
                delete: to_ids(&deletions),
                restore: to_ids(&restores),
            };
            match engine.apply(&batch) {
                Ok(report) => {
                    stats::PUBLISHES.inc();
                    stats::DELTA_PUBLISHES.inc();
                    let label = snap.label.clone();
                    let epoch = shared.cell.publish(ServingInstance {
                        label: label.clone(),
                        engine,
                    });
                    Response::DeltaPublished {
                        epoch,
                        label,
                        deleted: report.deleted as u64,
                        restored: report.restored as u64,
                        overdeleted: report.overdeleted as u64,
                        rederived: report.rederived as u64,
                    }
                }
                Err(e) => {
                    stats::REQUESTS_ERROR.inc();
                    Response::Error {
                        message: format!("delta publish failed: {e}"),
                    }
                }
            }
        }
        Ok(Request::Solve(req)) => match shared.gate.acquire(&req.tenant, shared.admission_wait) {
            Err(e) => {
                stats::REQUESTS_OVERLOADED.inc();
                Response::Overloaded {
                    reason: e.to_string(),
                }
            }
            Ok(_permit) => {
                // Snapshot *after* admission: a request that waited in
                // the queue solves the freshest epoch.
                let snap = shared.cell.snapshot();
                let portfolio = (shared.portfolio)(req.objective);
                // ordering: Relaxed — only uniqueness of the ticket
                // matters (seed derivation), not its order.
                let seq = shared.request_seq.fetch_add(1, Ordering::Relaxed);
                let seed = shared.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                match engine::serve_solve(
                    &snap,
                    &req,
                    &portfolio,
                    &shared.engine,
                    &shared.active,
                    seed,
                ) {
                    Served::Ok(ok) => {
                        stats::REQUESTS_OK.inc();
                        Response::Ok(ok)
                    }
                    Served::DeadlineExceeded { attempts, micros } => {
                        stats::REQUESTS_DEADLINE.inc();
                        Response::DeadlineExceeded { attempts, micros }
                    }
                    Served::Failed { message } => {
                        stats::REQUESTS_ERROR.inc();
                        Response::Error { message }
                    }
                }
            }
        },
    };
    stats::REQUEST_MICROS.observe(start.elapsed().as_micros() as u64);
    response
}
