//! A small blocking client for the wire protocol.
//!
//! Used by the `delpropd` CLI's request mode, the integration tests,
//! and the chaos harness's load generator. Supports both the
//! one-shot [`Client::request`] call and split [`Client::send`] /
//! [`Client::recv`] halves for open-loop load generation (fire
//! requests without waiting, then drain responses — responses come
//! back in request order because the daemon serves each connection's
//! frames sequentially).

use std::io;
use std::net::TcpStream;

use crate::wire::{read_frame, write_frame, ConnStream, Request, Response};

/// A connected protocol client.
pub struct Client {
    stream: Box<dyn ConnStream>,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream: Box::new(stream),
        })
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> io::Result<Client> {
        Ok(Client {
            stream: Box::new(std::os::unix::net::UnixStream::connect(path)?),
        })
    }

    /// Bound how long [`Client::recv`] blocks — the chaos harness uses
    /// this to turn "the daemon hung" into a test failure instead of a
    /// hung test.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_stream_read_timeout(timeout)
    }

    /// Fire a request without waiting for the response.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &req.to_bytes())
    }

    /// Read the next response frame (blocking).
    pub fn recv(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::from_bytes(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// One request/response round trip.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}
