//! `delprop-server`: a resilient multi-tenant serving daemon for
//! deletion propagation (DESIGN.md §12).
//!
//! The library crate behind the `delpropd` binary. It turns the
//! portfolio runtime in [`delprop_core`] into a long-running service
//! that keeps answering — degraded if it must, corrupted never — while
//! instances are republished, members fail, and clients overload it:
//!
//! - [`wire`] — a length-prefixed JSON wire protocol (`u32` big-endian
//!   frame length, then a UTF-8 JSON document) shared by the daemon,
//!   the [`client`], the chaos harness, and the load generator;
//! - [`state`] — [`InstanceSpec`]: declarative problem-instance
//!   specifications (workload generators or the paper's Figure 1)
//!   built into pre-compiled [`ServingInstance`]s;
//! - epoch snapshots — the live instance is published through
//!   [`delprop_core::runtime::EpochCell`], so in-flight requests keep
//!   solving against the snapshot they started with while a publish
//!   installs the next epoch without blocking readers;
//! - [`admission`] — a bounded admission [`admission::Gate`] (global
//!   and per-tenant concurrency limits, bounded wait queue) that sheds
//!   load with typed `Overloaded` rejections instead of queueing
//!   without bound;
//! - [`engine`] — the per-request solve ladder: deadline-bounded
//!   budgets on the atomic pool, retry with jittered exponential
//!   [`backoff`] for transient member failures, and graceful
//!   degradation to the best *verified* approximate answer, labeled
//!   with the guarantee it actually carries;
//! - [`stats`] — serving counters and latency histograms merged with
//!   the core runtime registry, exposed over the wire via `health` and
//!   `stats` requests (which bypass admission, so the daemon stays
//!   observable under overload).
//!
//! Every concurrency primitive the daemon adds (shutdown flag, epoch
//! cell, budget cancellation) goes through `runtime::sync` /
//! `runtime::now()`, keeping the whole serving path inside the
//! model-checker and lint discipline of DESIGN.md §11.

pub mod admission;
pub mod backoff;
pub mod client;
pub mod daemon;
pub mod engine;
pub mod state;
pub mod stats;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionError, Gate, Permit};
pub use backoff::{Backoff, BackoffPolicy};
pub use client::Client;
pub use daemon::{Bind, Daemon, PortfolioFactory, ServerConfig};
pub use engine::{ActiveRequests, EngineConfig, Served};
pub use state::{InstanceSpec, ServingInstance};
pub use wire::{Request, Response, SolveOk, SolveRequest};
