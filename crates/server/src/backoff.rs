//! Jittered exponential backoff for transient-failure retries.
//!
//! The delay schedule is *full jitter* over an exponentially growing
//! window (`uniform(0 ..= min(base·factor^attempt, max))`): under
//! correlated failures — every member of a portfolio tripping over the
//! same transient fault — full jitter decorrelates the retry herd,
//! while the exponential cap keeps a persistently failing request from
//! hammering the solvers. Randomness comes from the workload crate's
//! `SplitMix64`, seeded per request, so a replayed request retries on
//! a replayable schedule.
//!
//! This module is the repository's **only sanctioned
//! `thread::sleep`** outside fault injection and tests (enforced by
//! `cargo run -p xtask -- lint`, rule *no-sleep*): every delay here is
//! bounded by the request deadline, so a sleeping retry can never
//! outlive the request that asked for it.

use std::time::{Duration, Instant};

use delprop_core::runtime::now;
use delprop_workload::rng::SplitMix64;

/// Backoff schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Jitter window of the first retry, µs.
    pub base_micros: u64,
    /// Window growth per retry.
    pub factor: u32,
    /// Window cap, µs.
    pub max_micros: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_micros: 500,
            factor: 2,
            max_micros: 50_000,
        }
    }
}

/// Per-request backoff state.
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// Fresh schedule; `seed` makes the jitter replayable.
    pub fn new(policy: BackoffPolicy, seed: u64) -> Self {
        Backoff {
            policy,
            attempt: 0,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Next delay: full jitter over the current exponential window.
    pub fn next_delay(&mut self) -> Duration {
        let window = self
            .policy
            .base_micros
            .saturating_mul(u64::from(self.policy.factor).saturating_pow(self.attempt))
            .min(self.policy.max_micros);
        self.attempt = self.attempt.saturating_add(1);
        // `below` takes a usize: clamp the window before casting (a
        // `window as usize` would silently wrap on 32-bit targets) and
        // saturate the +1 so a `max_micros` of `usize::MAX` cannot
        // overflow the bound to 0.
        let bound = usize::try_from(window)
            .unwrap_or(usize::MAX)
            .saturating_add(1);
        let jittered = self.rng.below(bound) as u64;
        Duration::from_micros(jittered)
    }

    /// Sleep the next delay, clamped to `deadline`. Returns whether
    /// wall-clock remains for another attempt afterwards.
    pub fn sleep_before_retry(&mut self, deadline: Instant) -> bool {
        let delay = self.next_delay();
        let remaining = deadline.saturating_duration_since(now());
        if remaining.is_zero() {
            return false;
        }
        // The one sanctioned sleep: bounded by both the jitter window
        // cap and the request deadline.
        std::thread::sleep(delay.min(remaining));
        now() < deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_grow_exponentially_and_cap() {
        let policy = BackoffPolicy {
            base_micros: 100,
            factor: 2,
            max_micros: 400,
        };
        // Same seed → same schedule; every delay within the window.
        let delays: Vec<Duration> = {
            let mut b = Backoff::new(policy, 42);
            (0..6).map(|_| b.next_delay()).collect()
        };
        let replay: Vec<Duration> = {
            let mut b = Backoff::new(policy, 42);
            (0..6).map(|_| b.next_delay()).collect()
        };
        assert_eq!(delays, replay, "same seed must replay the schedule");
        for (i, d) in delays.iter().enumerate() {
            let window = (100u64 << i.min(2)).min(400);
            assert!(
                d.as_micros() as u64 <= window,
                "delay {i} = {d:?} exceeds window {window}µs"
            );
        }
    }

    #[test]
    fn extreme_windows_do_not_overflow_the_jitter_bound() {
        // `max_micros = u64::MAX` saturates the exponential window; the
        // sampling bound must clamp to the usize range and saturate the
        // +1 instead of wrapping to 0 (which would panic in `below`).
        let mut b = Backoff::new(
            BackoffPolicy {
                base_micros: u64::MAX,
                factor: u32::MAX,
                max_micros: u64::MAX,
            },
            3,
        );
        for _ in 0..4 {
            let _ = b.next_delay(); // must not panic
        }
        // Exactly usize::MAX as a window exercises the saturating +1.
        let mut b = Backoff::new(
            BackoffPolicy {
                base_micros: usize::MAX as u64,
                factor: 1,
                max_micros: usize::MAX as u64,
            },
            3,
        );
        let _ = b.next_delay();
        // A zero window must stay a guaranteed-zero delay.
        let mut b = Backoff::new(
            BackoffPolicy {
                base_micros: 0,
                factor: 2,
                max_micros: 0,
            },
            9,
        );
        assert_eq!(b.next_delay(), Duration::ZERO);
    }

    #[test]
    fn sleep_respects_the_deadline() {
        let mut b = Backoff::new(
            BackoffPolicy {
                base_micros: 1_000_000, // 1 s window...
                factor: 2,
                max_micros: 1_000_000,
            },
            7,
        );
        // ...but the deadline is 10 ms away: the sleep must clamp.
        let deadline = now() + Duration::from_millis(10);
        let start = now();
        let more = b.sleep_before_retry(deadline);
        assert!(start.elapsed() < Duration::from_millis(200));
        // Either outcome of `more` is legal (depends on jitter); a
        // deadline already passed must report false immediately.
        let _ = more;
        let past = now() - Duration::from_millis(1);
        assert!(!b.sleep_before_retry(past));
    }
}
