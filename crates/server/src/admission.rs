//! Admission control: bounded queueing and typed load shedding.
//!
//! The [`Gate`] bounds three things a misbehaving client population
//! could otherwise grow without limit: concurrent solves (globally and
//! per tenant) and the number of requests *waiting* for a slot. A
//! request that cannot be admitted within those bounds gets a typed
//! [`AdmissionError`] — rendered as an `overloaded` response — rather
//! than an unbounded queue slot, so the daemon's memory and tail
//! latency stay bounded under any offered load.
//!
//! The gate is a classic `Mutex` + `Condvar` monitor, deliberately
//! *not* a lock-free structure: admission is off the solve hot path
//! (one lock per request, held for a few loads and stores), and the
//! blocking-with-timeout semantics of [`Condvar::wait_timeout`] are
//! exactly what a bounded wait queue needs. The model-checked
//! lock-free code in this PR is the epoch cell, where readers *are*
//! on the hot path.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use delprop_core::runtime::now;

/// Gate limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Solves admitted concurrently, across all tenants.
    pub max_inflight: usize,
    /// Solves admitted concurrently for any one tenant.
    pub max_per_tenant: usize,
    /// Requests allowed to wait for a slot; beyond this, shed
    /// immediately.
    pub max_queued: usize,
    /// Longest a request waits for a slot before it is shed.
    pub max_wait: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 8,
            max_per_tenant: 4,
            max_queued: 16,
            max_wait: Duration::from_millis(250),
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The daemon is shutting down.
    Closed,
    /// The tenant is already at its concurrency limit.
    TenantSaturated {
        /// The saturated tenant.
        tenant: String,
        /// Its limit.
        limit: usize,
    },
    /// The wait queue is full.
    QueueFull {
        /// The queue bound.
        limit: usize,
    },
    /// No slot freed up within the admission wait.
    Timeout {
        /// How long the request waited.
        waited: Duration,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Closed => f.write_str("shutting down"),
            AdmissionError::TenantSaturated { tenant, limit } => {
                write!(f, "tenant `{tenant}` saturated ({limit} inflight)")
            }
            AdmissionError::QueueFull { limit } => write!(f, "queue full ({limit} waiting)"),
            AdmissionError::Timeout { waited } => {
                write!(f, "no slot within {} ms", waited.as_millis())
            }
        }
    }
}

#[derive(Default)]
struct GateState {
    inflight: usize,
    queued: usize,
    per_tenant: HashMap<String, usize>,
    closed: bool,
}

/// The admission monitor.
pub struct Gate {
    cfg: AdmissionConfig,
    state: Mutex<GateState>,
    freed: Condvar,
}

impl Gate {
    /// A gate with the given limits.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Gate {
            cfg,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// Lock the state, recovering from poisoning: a panic in some
    /// other conn thread must not take admission (and with it the
    /// whole daemon) down.
    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tenant_count(st: &GateState, tenant: &str) -> usize {
        st.per_tenant.get(tenant).copied().unwrap_or(0)
    }

    /// Try to admit `tenant`, waiting at most
    /// `min(max_wait, cfg.max_wait)` for a slot. On success the
    /// returned [`Permit`] holds the slot until dropped.
    pub fn acquire(&self, tenant: &str, max_wait: Duration) -> Result<Permit<'_>, AdmissionError> {
        let max_wait = max_wait.min(self.cfg.max_wait);
        let mut st = self.lock();
        if st.closed {
            return Err(AdmissionError::Closed);
        }
        // Per-tenant saturation sheds immediately: queueing more work
        // from a tenant that already holds its full share would only
        // let one tenant crowd the bounded queue.
        if Self::tenant_count(&st, tenant) >= self.cfg.max_per_tenant {
            crate::stats::SHED_TENANT.inc();
            return Err(AdmissionError::TenantSaturated {
                tenant: tenant.to_string(),
                limit: self.cfg.max_per_tenant,
            });
        }
        if st.inflight >= self.cfg.max_inflight {
            if st.queued >= self.cfg.max_queued {
                crate::stats::SHED_QUEUE.inc();
                return Err(AdmissionError::QueueFull {
                    limit: self.cfg.max_queued,
                });
            }
            // From here to admission there are three distinct exits
            // (timeout, close, slot won); the queued counter must be
            // decremented on exactly one of them. `QueuedSlot` owns the
            // slot and the guard, so every exit — including a panic
            // unwinding through the wait loop — releases it exactly
            // once, under the still-held lock.
            let mut slot = QueuedSlot::claim(st);
            let start = now();
            let deadline = start + max_wait;
            loop {
                let remaining = deadline.saturating_duration_since(now());
                if remaining.is_zero() {
                    crate::stats::SHED_TIMEOUT.inc();
                    return Err(AdmissionError::Timeout {
                        waited: start.elapsed(),
                    });
                }
                slot.wait(&self.freed, remaining);
                let state = slot.state();
                if state.closed {
                    return Err(AdmissionError::Closed);
                }
                if state.inflight < self.cfg.max_inflight
                    && Self::tenant_count(state, tenant) < self.cfg.max_per_tenant
                {
                    break;
                }
            }
            st = slot.admit();
            crate::stats::QUEUE_WAIT_MICROS.observe(start.elapsed().as_micros() as u64);
        }
        st.inflight += 1;
        *st.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(Permit {
            gate: self,
            tenant: tenant.to_string(),
        })
    }

    /// Stop admitting: current holders finish, waiters and future
    /// requests get [`AdmissionError::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.freed.notify_all();
    }

    /// Solves currently admitted.
    pub fn inflight(&self) -> usize {
        self.lock().inflight
    }

    /// Requests currently waiting for a slot.
    pub fn queued(&self) -> usize {
        self.lock().queued
    }
}

/// A claimed wait-queue slot. Holds the gate's mutex guard across the
/// wait loop and owns the `queued` increment it performed at claim
/// time: the matching decrement happens exactly once, either in
/// [`QueuedSlot::admit`] on the success path or in `Drop` on any early
/// exit (timeout, close, panic) — always under the still-held lock, so
/// the counter can neither leak nor underflow.
struct QueuedSlot<'a> {
    /// `None` only transiently inside [`QueuedSlot::wait`] (the condvar
    /// consumes the guard) and permanently after [`QueuedSlot::admit`].
    guard: Option<MutexGuard<'a, GateState>>,
}

impl<'a> QueuedSlot<'a> {
    /// Enter the wait queue (caller has checked the queue bound).
    fn claim(mut guard: MutexGuard<'a, GateState>) -> QueuedSlot<'a> {
        guard.queued += 1;
        QueuedSlot { guard: Some(guard) }
    }

    /// The locked gate state.
    fn state(&mut self) -> &mut GateState {
        // lint:allow(panic): slot protocol — `guard` is only vacated by
        // `admit`/`wait`, which restore it or consume `self`
        self.guard.as_mut().expect("queued slot already released")
    }

    /// Block on `freed` for at most `dur`, reacquiring the lock (and
    /// with it the guard) before returning.
    fn wait(&mut self, freed: &Condvar, dur: Duration) {
        // lint:allow(panic): slot protocol — `guard` is present between
        // public calls; `wait` itself restores it before returning
        let guard = self.guard.take().expect("queued slot already released");
        let guard = freed
            .wait_timeout(guard, dur)
            .unwrap_or_else(|e| e.into_inner())
            .0;
        self.guard = Some(guard);
    }

    /// Leave the queue for admission: decrement `queued` and hand the
    /// guard back so the caller can take an inflight slot atomically.
    fn admit(mut self) -> MutexGuard<'a, GateState> {
        // lint:allow(panic): slot protocol — `admit` consumes the slot,
        // so the guard is still present and `queued` counts this slot
        let mut guard = self.guard.take().expect("queued slot already released");
        // lint:allow(panic): accounting invariant — queued >= 1 here
        guard.queued = guard
            .queued
            .checked_sub(1)
            .expect("admission queued counter underflow");
        guard
    }
}

impl Drop for QueuedSlot<'_> {
    fn drop(&mut self) {
        if let Some(mut guard) = self.guard.take() {
            // This decrement pairs with the increment in `claim`;
            // underflow is a bug worth a loud crash in the accept loop.
            // lint:allow(panic): accounting invariant, see above
            guard.queued = guard
                .queued
                .checked_sub(1)
                .expect("admission queued counter underflow");
        }
    }
}

/// An admitted slot; dropping it releases the slot and wakes waiters.
pub struct Permit<'a> {
    gate: &'a Gate,
    tenant: String,
}

impl fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Permit")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.lock();
        // Each Permit decrements exactly once what its issue
        // incremented.
        // lint:allow(panic): accounting invariant, see above
        st.inflight = st
            .inflight
            .checked_sub(1)
            .expect("admission inflight counter underflow");
        if let Some(n) = st.per_tenant.get_mut(&self.tenant) {
            // The per-tenant count covers every outstanding Permit.
            // lint:allow(panic): accounting invariant, see above
            *n = n
                .checked_sub(1)
                .expect("admission per-tenant counter underflow");
            if *n == 0 {
                st.per_tenant.remove(&self.tenant);
            }
        }
        drop(st);
        self.gate.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(max_inflight: usize, max_per_tenant: usize, max_queued: usize) -> Gate {
        Gate::new(AdmissionConfig {
            max_inflight,
            max_per_tenant,
            max_queued,
            max_wait: Duration::from_millis(50),
        })
    }

    #[test]
    fn admits_up_to_the_global_limit_then_times_out() {
        let g = gate(2, 2, 4);
        let p1 = g.acquire("a", Duration::from_millis(5)).unwrap();
        let _p2 = g.acquire("b", Duration::from_millis(5)).unwrap();
        assert_eq!(g.inflight(), 2);
        match g.acquire("c", Duration::from_millis(5)) {
            Err(AdmissionError::Timeout { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        drop(p1);
        let _p3 = g.acquire("c", Duration::from_millis(50)).unwrap();
        assert_eq!(g.inflight(), 2);
    }

    #[test]
    fn tenant_saturation_sheds_immediately() {
        let g = gate(8, 1, 4);
        let _p = g.acquire("a", Duration::from_millis(5)).unwrap();
        let start = now();
        match g.acquire("a", Duration::from_millis(5)) {
            Err(AdmissionError::TenantSaturated { tenant, limit }) => {
                assert_eq!((tenant.as_str(), limit), ("a", 1));
            }
            other => panic!("expected tenant saturation, got {other:?}"),
        }
        // Immediate: no queue wait was spent on a hopeless request.
        assert!(start.elapsed() < Duration::from_millis(5));
        let _p2 = g.acquire("b", Duration::from_millis(5)).unwrap();
    }

    #[test]
    fn queue_bound_sheds_excess_waiters() {
        let g = gate(1, 1, 0);
        let _p = g.acquire("a", Duration::from_millis(5)).unwrap();
        match g.acquire("b", Duration::from_millis(5)) {
            Err(AdmissionError::QueueFull { limit: 0 }) => {}
            other => panic!("expected queue full, got {other:?}"),
        };
    }

    #[test]
    fn close_rejects_waiters_and_newcomers() {
        let g = gate(1, 1, 4);
        let p = g.acquire("a", Duration::from_millis(5)).unwrap();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| g.acquire("b", Duration::from_millis(500)));
            // Give the waiter a moment to enter the queue, then close.
            while g.queued() == 0 {
                std::thread::yield_now();
            }
            g.close();
            assert!(matches!(
                waiter.join().unwrap(),
                Err(AdmissionError::Closed)
            ));
        });
        drop(p);
        assert!(matches!(
            g.acquire("c", Duration::from_millis(5)),
            Err(AdmissionError::Closed)
        ));
    }

    #[test]
    fn counters_never_underflow_and_drain_to_zero_under_contention() {
        // Deterministically-shaped multithreaded stress over a small
        // gate: eight threads across three tenants, with per-iteration
        // waits chosen to force every exit path (admitted, timeout,
        // tenant-saturated, queue-full). The `checked_sub` invariants
        // inside `QueuedSlot` and `Permit` panic on any underflow —
        // which `scope` propagates — and afterwards every counter must
        // drain to exactly zero.
        let g = gate(3, 2, 2);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let g = &g;
                s.spawn(move || {
                    let tenant = ["a", "b", "c"][t % 3];
                    for i in 0..50usize {
                        let wait = Duration::from_micros(((t * 31 + i * 7) % 500) as u64);
                        if let Ok(_permit) = g.acquire(tenant, wait) {
                            if (t + i) % 3 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(g.inflight(), 0, "inflight must drain to 0");
        assert_eq!(g.queued(), 0, "queued must drain to 0");
        assert!(
            g.lock().per_tenant.is_empty(),
            "per-tenant counts must drain with their permits"
        );
    }

    #[test]
    fn close_mid_stress_releases_every_queued_slot() {
        // Waiters evicted by `close` take the QueuedSlot drop path; the
        // queue counter must still drain to zero.
        let g = gate(1, 1, 8);
        let p = g.acquire("holder", Duration::from_millis(5)).unwrap();
        std::thread::scope(|s| {
            let waiters: Vec<_> = (0..4)
                .map(|i| {
                    let g = &g;
                    s.spawn(move || g.acquire(&format!("w{i}"), Duration::from_millis(500)))
                })
                .collect();
            while g.queued() < 4 {
                std::thread::yield_now();
            }
            g.close();
            for w in waiters {
                assert!(matches!(w.join().unwrap(), Err(AdmissionError::Closed)));
            }
        });
        drop(p);
        assert_eq!(g.queued(), 0, "closed waiters must release their slots");
        assert_eq!(g.inflight(), 0);
    }

    #[test]
    fn permits_release_on_drop_and_wake_waiters() {
        let g = gate(1, 1, 4);
        let p = g.acquire("a", Duration::from_millis(5)).unwrap();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| g.acquire("b", Duration::from_millis(2_000)).map(|_| ()));
            while g.queued() == 0 {
                std::thread::yield_now();
            }
            drop(p);
            waiter.join().unwrap().unwrap();
        });
        assert_eq!(g.inflight(), 0);
    }
}
