//! Serving metrics, merged with the core runtime registry.
//!
//! Same zero-dependency [`Counter`]/[`Histogram`] primitives as
//! `delprop_core::runtime::metrics` (DESIGN.md §10), with a serving
//! namespace (`serve.*`). [`render_all`] merges both registries into
//! one sorted `name value` dump — the payload of the wire protocol's
//! `stats` request, which bypasses admission so the numbers stay
//! readable exactly when they matter: under overload.

use delprop_core::runtime::metrics::{self, Counter, Histogram};

/// Connections accepted.
pub static CONNECTIONS: Counter = Counter::new("serve.connections");
/// Requests received (all ops, malformed included).
pub static REQUESTS: Counter = Counter::new("serve.requests");
/// Solves answered with a verified solution.
pub static REQUESTS_OK: Counter = Counter::new("serve.ok");
/// Solves shed by admission.
pub static REQUESTS_OVERLOADED: Counter = Counter::new("serve.overloaded");
/// Solves that exceeded their deadline with no verified answer.
pub static REQUESTS_DEADLINE: Counter = Counter::new("serve.deadline_exceeded");
/// Typed failures (bad requests, permanent errors, shutdown).
pub static REQUESTS_ERROR: Counter = Counter::new("serve.errors");
/// Retry attempts made after transient failures.
pub static RETRIES: Counter = Counter::new("serve.retries");
/// Verified answers that were degraded (budget/deadline cut).
pub static DEGRADED: Counter = Counter::new("serve.degraded");
/// Degraded answers that came from the grace fallback solver.
pub static FALLBACKS: Counter = Counter::new("serve.fallbacks");
/// Epochs published.
pub static PUBLISHES: Counter = Counter::new("serve.publishes");
/// Epochs published through the incremental delta path.
pub static DELTA_PUBLISHES: Counter = Counter::new("serve.delta_publishes");
/// Requests shed because a tenant hit its concurrency limit.
pub static SHED_TENANT: Counter = Counter::new("serve.shed.tenant");
/// Requests shed because the wait queue was full.
pub static SHED_QUEUE: Counter = Counter::new("serve.shed.queue");
/// Requests shed after waiting the full admission timeout.
pub static SHED_TIMEOUT: Counter = Counter::new("serve.shed.timeout");

/// End-to-end request latency (receipt to response), µs.
pub static REQUEST_MICROS: Histogram = Histogram::new("serve.request_micros");
/// Time admitted requests spent waiting in the queue, µs.
pub static QUEUE_WAIT_MICROS: Histogram = Histogram::new("serve.queue_wait_micros");

/// The serving counters.
pub fn counters() -> &'static [&'static Counter] {
    static REGISTRY: [&Counter; 14] = [
        &CONNECTIONS,
        &REQUESTS,
        &REQUESTS_OK,
        &REQUESTS_OVERLOADED,
        &REQUESTS_DEADLINE,
        &REQUESTS_ERROR,
        &RETRIES,
        &DEGRADED,
        &FALLBACKS,
        &PUBLISHES,
        &DELTA_PUBLISHES,
        &SHED_TENANT,
        &SHED_QUEUE,
        &SHED_TIMEOUT,
    ];
    &REGISTRY
}

/// The serving histograms.
pub fn histograms() -> &'static [&'static Histogram] {
    static REGISTRY: [&Histogram; 2] = [&REQUEST_MICROS, &QUEUE_WAIT_MICROS];
    &REGISTRY
}

/// Core + serving registries rendered as one sorted dump.
pub fn render_all() -> String {
    let mut lines: Vec<String> = metrics::render().lines().map(str::to_string).collect();
    for c in counters() {
        lines.push(format!("{} {}", c.name(), c.get()));
    }
    for h in histograms() {
        let s = h.snapshot();
        lines.push(format!(
            "{} count={} sum={} mean={:.1}",
            s.name,
            s.count,
            s.sum,
            s.mean()
        ));
    }
    lines.sort();
    let mut out = String::new();
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_all_merges_both_registries_sorted() {
        REQUESTS.inc();
        let dump = render_all();
        assert!(dump.contains("serve.requests "), "{dump}");
        assert!(dump.contains("budget.ticks "), "{dump}");
        let lines: Vec<&str> = dump.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "dump must be sorted");
    }
}
