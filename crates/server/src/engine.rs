//! The per-request solve ladder: deadlines, retries, degradation.
//!
//! One request walks down this ladder, never up:
//!
//! 1. **Bounded attempt** — a fresh [`Budget`] per attempt, ticks from
//!    the request (or unlimited) and a wall-clock deadline equal to
//!    the *remaining* request deadline, so retries can never extend
//!    the total. The racing portfolio already degrades internally
//!    (best verified solution on exhaustion); a verified outcome is
//!    labeled with the guarantee its winner actually carries, and
//!    flagged `degraded` when the budget was cut.
//! 2. **Retry with backoff** — transient failures (contained panics,
//!    structural/transient member errors, tick exhaustion with
//!    wall-clock to spare) retry under jittered exponential
//!    [`Backoff`], bounded by the deadline. Permanent failures (bad
//!    deletions, invalid weights, shutdown cancellation) fail fast.
//! 3. **Grace fallback** — out of deadline or retries, one last
//!    tick-bounded run of the cheapest always-applicable solver. Its
//!    answer ships only if it verifies, labeled with *its* guarantee
//!    and `degraded: true`.
//! 4. **`DeadlineExceeded`** — the honest floor: no verified answer.
//!
//! Every attempt's budget is registered in [`ActiveRequests`] so
//! daemon shutdown can cancel the whole fleet pool-wide
//! ([`Budget::cancel_all_with_cause`]) — this is what bounds a stalled
//! member's lifetime to its request, not thread reaping.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use delprop_core::runtime::solver::{GeneralBalancedSolver, GreedySolver};
use delprop_core::runtime::sync::{AtomicU64, Ordering};
use delprop_core::runtime::{now, Budget, EpochSnapshot, Guarantee, Portfolio, Solver};
use delprop_core::solvers::local_search::Objective;
use delprop_core::{CoreError, Problem, Solution};
use delprop_query::ViewTupleId;

use crate::backoff::{Backoff, BackoffPolicy};
use crate::state::ServingInstance;
use crate::stats;
use crate::wire::{SolveOk, SolveRequest};

/// Engine-level request policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Deadline applied when the request names none, ms.
    pub default_deadline_ms: u64,
    /// Hard cap on any requested deadline, ms.
    pub max_deadline_ms: u64,
    /// Per-attempt tick budget when the request names none
    /// (`u64::MAX` = unlimited; the deadline governs).
    pub default_ticks: u64,
    /// Race the portfolio unless the request says otherwise.
    pub racing: bool,
    /// Partition into component shards and solve through the
    /// work-stealing scheduler unless the request says otherwise.
    /// Takes precedence over `racing` when both apply: sharding already
    /// parallelizes across components, so racing members on top would
    /// only oversubscribe the box.
    pub sharded: bool,
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// Retry jitter schedule.
    pub backoff: BackoffPolicy,
    /// Tick budget of the grace fallback run (never wall-clocked: the
    /// fallback must terminate even with the deadline already gone).
    pub grace_ticks: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            default_ticks: u64::MAX,
            racing: true,
            sharded: false,
            max_retries: 3,
            backoff: BackoffPolicy::default(),
            grace_ticks: 2_000_000,
        }
    }
}

/// What the ladder produced.
#[derive(Debug)]
pub enum Served {
    /// A verified (possibly degraded) answer.
    Ok(SolveOk),
    /// No verified answer within deadline + grace.
    DeadlineExceeded {
        /// Attempts made.
        attempts: u32,
        /// Wall-clock spent, µs.
        micros: u64,
    },
    /// A permanent typed failure.
    Failed {
        /// Human-readable cause.
        message: String,
    },
}

/// Budgets of requests currently inside the engine, shared with the
/// daemon so shutdown can cancel every in-flight solve pool-wide.
///
/// A fleet-cancel is **sticky**: budgets registered afterwards (e.g.
/// a retry attempt racing the shutdown) are cancelled on
/// registration, so no attempt can slip through the gap between
/// "cancel everything" and "the retry loop noticed".
#[derive(Default)]
pub struct ActiveRequests {
    next: AtomicU64,
    handles: Mutex<HashMap<u64, Budget>>,
    closed: std::sync::OnceLock<&'static str>,
}

impl ActiveRequests {
    /// Empty registry.
    pub fn new() -> Self {
        ActiveRequests::default()
    }

    /// Register a share of `budget`'s pool; the returned id
    /// deregisters it.
    pub fn register(&self, budget: &Budget) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed); // ordering: unique-id ticket, order irrelevant
        self.lock().insert(id, budget.share_labeled("active"));
        if let Some(cause) = self.closed.get() {
            budget.cancel_all_with_cause(cause);
        }
        id
    }

    /// Drop the handle for `id` (the request attempt finished).
    pub fn deregister(&self, id: u64) {
        self.lock().remove(&id);
    }

    /// Cancel every registered pool with `cause`, and every pool
    /// registered from now on.
    pub fn cancel_all_with_cause(&self, cause: &'static str) {
        let _ = self.closed.set(cause);
        for b in self.lock().values() {
            b.cancel_all_with_cause(cause);
        }
    }

    /// Number of registered attempt budgets.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no attempt is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Budget>> {
        self.handles.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// How an attempt error steers the ladder.
enum ErrorClass {
    /// Worth another attempt (with backoff) while the deadline holds.
    Transient,
    /// Fail the request now.
    Permanent,
}

fn classify(e: &CoreError) -> ErrorClass {
    match e {
        // Contained panics, structural/transient member errors, and
        // "nothing verified before the budget drained" are the shapes
        // injected faults take; all may clear on retry.
        // A stale compiled instance means a mutation (or a racing
        // publish) invalidated the IR a reader still held; the next
        // attempt reads the fresh projection.
        CoreError::SolverPanicked { .. }
        | CoreError::StructureMismatch { .. }
        | CoreError::Infeasible { .. }
        | CoreError::StaleCompiled { .. }
        | CoreError::BudgetExhausted { .. } => ErrorClass::Transient,
        // Cancellation means shutdown reached in; bad input stays bad.
        CoreError::Cancelled { .. }
        | CoreError::Query(_)
        | CoreError::NotKeyPreserving { .. }
        | CoreError::UnknownViewTuple { .. }
        | CoreError::InvalidWeight { .. }
        | CoreError::FdViolation { .. } => ErrorClass::Permanent,
    }
}

/// Wire label for a guarantee.
fn guarantee_label(g: Guarantee) -> String {
    g.to_string()
}

fn cost_of(solution: &Solution, problem: &Problem, objective: Objective) -> f64 {
    match objective {
        Objective::Standard => solution.side_effect(problem),
        Objective::Balanced => solution.balanced_cost(problem),
    }
}

fn deleted_pairs(solution: &Solution) -> Vec<(usize, usize)> {
    solution
        .deleted
        .iter()
        .map(|t| (t.relation.0, t.index))
        .collect()
}

/// Run the ladder for one admitted solve request.
pub fn serve_solve(
    snapshot: &EpochSnapshot<ServingInstance>,
    req: &SolveRequest,
    portfolio: &Portfolio,
    cfg: &EngineConfig,
    active: &ActiveRequests,
    seed: u64,
) -> Served {
    let start = now();
    let deadline_ms = req
        .deadline_ms
        .unwrap_or(cfg.default_deadline_ms)
        .min(cfg.max_deadline_ms);
    let deadline = start + std::time::Duration::from_millis(deadline_ms);

    // Requests without extra ΔV solve the published instance directly
    // and share its publish-time projection; requests with extra ΔV
    // fork a per-request problem through the epoch engine's delta
    // path — an O(active) incremental projection over the shared
    // static layer, never a full recompile.
    let owned: Problem;
    let problem: &Problem = if req.deletions.is_empty() {
        snapshot.engine.problem()
    } else {
        let extra: Vec<ViewTupleId> = req
            .deletions
            .iter()
            .map(|&(view, index)| ViewTupleId::new(view, index))
            .collect();
        match snapshot.engine.with_delta(&extra) {
            Ok(p) => {
                owned = p;
                &owned
            }
            Err(e) => {
                return Served::Failed {
                    message: format!("bad deletion: {e}"),
                }
            }
        }
    };

    let objective = portfolio.objective();
    let mut backoff = Backoff::new(cfg.backoff, seed);
    let mut attempts = 0u32;
    while attempts <= cfg.max_retries {
        let remaining = deadline.saturating_duration_since(now());
        if remaining.is_zero() {
            break;
        }
        attempts += 1;
        let ticks = req.ticks.unwrap_or(cfg.default_ticks);
        let budget = if ticks == u64::MAX {
            Budget::unlimited()
        } else {
            Budget::with_ticks(ticks)
        }
        .with_deadline(remaining);
        let id = active.register(&budget);
        let racing = req.racing.unwrap_or(cfg.racing);
        let sharded = req.sharded.unwrap_or(cfg.sharded);
        let result = if sharded {
            portfolio.solve_sharded(problem, &budget)
        } else if racing {
            portfolio.solve_racing(problem, &budget)
        } else {
            portfolio.solve(problem, &budget)
        };
        active.deregister(id);
        match result {
            Ok(outcome) => {
                let guarantee = outcome
                    .report
                    .iter()
                    .find(|r| r.name == outcome.winner)
                    .map(|r| r.guarantee)
                    .unwrap_or(Guarantee::Heuristic);
                let degraded = budget.is_exhausted() || budget.is_cancelled();
                if degraded {
                    stats::DEGRADED.inc();
                }
                return Served::Ok(SolveOk {
                    epoch: snapshot.epoch(),
                    winner: outcome.winner.to_string(),
                    guarantee: guarantee_label(guarantee),
                    degraded,
                    cost: outcome.cost,
                    deleted: deleted_pairs(&outcome.solution),
                    micros: start.elapsed().as_micros() as u64,
                    ticks: budget.used(),
                    attempts,
                });
            }
            // A cancelled pool is always permanent, whatever error
            // surfaced: racing reports cooperative cancellation as a
            // member *status*, so the aggregate error alone can hide
            // the shutdown.
            Err(_) if budget.is_cancelled() => {
                return Served::Failed {
                    message: format!(
                        "cancelled: {}",
                        budget.cancel_cause().unwrap_or("request cancelled")
                    ),
                }
            }
            Err(e) => match classify(&e) {
                ErrorClass::Permanent => {
                    return Served::Failed {
                        message: e.to_string(),
                    }
                }
                ErrorClass::Transient => {
                    stats::RETRIES.inc();
                    if !backoff.sleep_before_retry(deadline) {
                        break;
                    }
                }
            },
        }
    }

    // Grace fallback: deadline (or the retry allowance) is gone; try
    // the cheapest always-applicable solver under ticks only, and ship
    // its answer iff it verifies.
    if let Some(ok) = grace_fallback(snapshot, problem, objective, cfg, attempts, start) {
        return Served::Ok(ok);
    }
    Served::DeadlineExceeded {
        attempts,
        micros: start.elapsed().as_micros() as u64,
    }
}

fn grace_fallback(
    snapshot: &EpochSnapshot<ServingInstance>,
    problem: &Problem,
    objective: Objective,
    cfg: &EngineConfig,
    attempts: u32,
    start: std::time::Instant,
) -> Option<SolveOk> {
    let solver: Box<dyn Solver> = match objective {
        Objective::Standard => Box::new(GreedySolver),
        Objective::Balanced => Box::new(GeneralBalancedSolver),
    };
    let budget = Budget::with_ticks(cfg.grace_ticks);
    let solution = solver.solve(problem, &budget).ok()?;
    // Same acceptance bar as the portfolio: a fallback answer must
    // verify (feasibility for the standard objective, plus the
    // re-evaluation cross-check, with any panic contained).
    let verified = catch_unwind(AssertUnwindSafe(|| {
        if objective == Objective::Standard && !solution.is_feasible(problem) {
            return false;
        }
        solution.verify_by_reevaluation(problem);
        true
    }))
    .unwrap_or(false);
    if !verified {
        return None;
    }
    stats::DEGRADED.inc();
    stats::FALLBACKS.inc();
    Some(SolveOk {
        epoch: snapshot.epoch(),
        winner: solver.name().to_string(),
        guarantee: guarantee_label(solver.guarantee(problem)),
        degraded: true,
        cost: cost_of(&solution, problem, objective),
        deleted: deleted_pairs(&solution),
        micros: start.elapsed().as_micros() as u64,
        ticks: budget.used(),
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InstanceSpec;
    use delprop_core::runtime::{EpochCell, FaultMode, FaultySolver};

    fn snapshot() -> (EpochCell<ServingInstance>, EngineConfig) {
        let inst = ServingInstance::build("test", &InstanceSpec::Fig1).unwrap();
        (EpochCell::new(inst), EngineConfig::default())
    }

    fn req_with_deadline(ms: u64) -> SolveRequest {
        SolveRequest {
            deadline_ms: Some(ms),
            ..SolveRequest::default()
        }
    }

    #[test]
    fn healthy_portfolio_answers_exactly() {
        let (cell, cfg) = snapshot();
        let snap = cell.snapshot();
        let portfolio = Portfolio::standard();
        let active = ActiveRequests::new();
        match serve_solve(
            &snap,
            &req_with_deadline(5_000),
            &portfolio,
            &cfg,
            &active,
            1,
        ) {
            Served::Ok(ok) => {
                assert_eq!(ok.attempts, 1);
                assert!(!ok.degraded);
                assert!(!ok.deleted.is_empty());
                assert_eq!(ok.epoch, snap.epoch());
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        assert!(active.is_empty(), "attempt budgets must deregister");
    }

    #[test]
    fn sharded_flag_routes_to_the_sharded_portfolio() {
        let (cell, mut cfg) = snapshot();
        cfg.sharded = true;
        let snap = cell.snapshot();
        let portfolio = Portfolio::standard();
        let active = ActiveRequests::new();
        match serve_solve(
            &snap,
            &req_with_deadline(5_000),
            &portfolio,
            &cfg,
            &active,
            7,
        ) {
            Served::Ok(ok) => {
                assert_eq!(ok.winner, "sharded");
                assert!(!ok.degraded);
                assert!(!ok.deleted.is_empty());
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        // The request-level flag must override the config default.
        let req = SolveRequest {
            deadline_ms: Some(5_000),
            sharded: Some(false),
            ..SolveRequest::default()
        };
        match serve_solve(&snap, &req, &portfolio, &cfg, &active, 8) {
            Served::Ok(ok) => assert_ne!(ok.winner, "sharded"),
            other => panic!("expected Ok, got {other:?}"),
        }
        assert!(active.is_empty(), "attempt budgets must deregister");
    }

    #[test]
    fn transient_member_failures_retry_to_success() {
        let (cell, mut cfg) = snapshot();
        cfg.max_retries = 3;
        let snap = cell.snapshot();
        // The whole portfolio is one transient member: the first two
        // attempts fail outright, the third succeeds.
        let portfolio = Portfolio::new(Objective::Standard).with(FaultySolver::new(
            GreedySolver,
            FaultMode::Transient { fail_count: 2 },
        ));
        let active = ActiveRequests::new();
        match serve_solve(
            &snap,
            &req_with_deadline(5_000),
            &portfolio,
            &cfg,
            &active,
            2,
        ) {
            Served::Ok(ok) => {
                assert_eq!(ok.attempts, 3);
                assert_eq!(ok.winner, "faulty_transient");
            }
            other => panic!("expected Ok after retries, got {other:?}"),
        }
    }

    #[test]
    fn slow_start_retries_until_the_warmup_fits() {
        let (cell, mut cfg) = snapshot();
        cfg.max_retries = 4;
        let snap = cell.snapshot();
        let portfolio = Portfolio::new(Objective::Standard).with(FaultySolver::new(
            GreedySolver,
            FaultMode::SlowStart {
                warmup_ticks: 40_000,
            },
        ));
        let active = ActiveRequests::new();
        let req = SolveRequest {
            deadline_ms: Some(5_000),
            ticks: Some(11_000),
            ..SolveRequest::default()
        };
        match serve_solve(&snap, &req, &portfolio, &cfg, &active, 3) {
            Served::Ok(ok) => {
                assert!(ok.attempts >= 2, "warm-up must have forced retries");
                assert_eq!(ok.winner, "faulty_slow_start");
            }
            other => panic!("expected Ok after slow start, got {other:?}"),
        }
    }

    #[test]
    fn dead_portfolio_degrades_to_verified_fallback() {
        let (cell, mut cfg) = snapshot();
        cfg.max_retries = 1;
        let snap = cell.snapshot();
        // Every member permanently broken: panic + corrupt output.
        let portfolio = Portfolio::new(Objective::Standard)
            .with(FaultySolver::new(GreedySolver, FaultMode::Panic))
            .with(FaultySolver::new(GreedySolver, FaultMode::Corrupt));
        let active = ActiveRequests::new();
        match serve_solve(&snap, &req_with_deadline(200), &portfolio, &cfg, &active, 4) {
            Served::Ok(ok) => {
                assert!(ok.degraded, "fallback answers are degraded by definition");
                assert_eq!(ok.winner, "greedy");
                assert_eq!(ok.guarantee, "heuristic");
            }
            other => panic!("expected degraded fallback, got {other:?}"),
        }
    }

    #[test]
    fn zero_grace_means_honest_deadline_exceeded() {
        let (cell, mut cfg) = snapshot();
        cfg.max_retries = 1;
        cfg.grace_ticks = 0; // fallback cannot even compile
        let snap = cell.snapshot();
        let portfolio = Portfolio::new(Objective::Standard)
            .with(FaultySolver::new(GreedySolver, FaultMode::Panic));
        let active = ActiveRequests::new();
        match serve_solve(&snap, &req_with_deadline(50), &portfolio, &cfg, &active, 5) {
            Served::DeadlineExceeded { attempts, .. } => assert!(attempts >= 1),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn bad_request_deletions_fail_fast() {
        let (cell, cfg) = snapshot();
        let snap = cell.snapshot();
        let portfolio = Portfolio::standard();
        let active = ActiveRequests::new();
        let req = SolveRequest {
            deletions: vec![(999, 999)],
            ..SolveRequest::default()
        };
        match serve_solve(&snap, &req, &portfolio, &cfg, &active, 6) {
            Served::Failed { message } => assert!(message.contains("bad deletion"), "{message}"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn extra_deletions_solve_against_the_snapshot() {
        let (cell, cfg) = snapshot();
        let snap = cell.snapshot();
        let portfolio = Portfolio::standard();
        let active = ActiveRequests::new();
        // Fig1 view 0 tuple 0 on top of the instance's own ΔV.
        let req = SolveRequest {
            deletions: vec![(0, 0)],
            ..SolveRequest::default()
        };
        match serve_solve(&snap, &req, &portfolio, &cfg, &active, 7) {
            Served::Ok(ok) => assert!(!ok.deleted.is_empty()),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_cancellation_is_permanent() {
        let (cell, cfg) = snapshot();
        let snap = cell.snapshot();
        let portfolio = Portfolio::new(Objective::Standard)
            .with(FaultySolver::new(GreedySolver, FaultMode::Stall));
        let active = ActiveRequests::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                serve_solve(
                    &snap,
                    &req_with_deadline(10_000),
                    &portfolio,
                    &cfg,
                    &active,
                    8,
                )
            });
            // Wait for the attempt budget to register, then cancel the
            // fleet the way daemon shutdown does.
            while active.is_empty() {
                std::thread::yield_now();
            }
            active.cancel_all_with_cause("shutdown");
            match h.join().unwrap() {
                Served::Failed { message } => {
                    assert!(message.contains("cancelled"), "{message}")
                }
                other => panic!("expected Failed on shutdown, got {other:?}"),
            }
        });
    }
}
