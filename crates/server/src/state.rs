//! Declarative instance specifications and the epoch payload.
//!
//! A published epoch carries a [`ServingInstance`]: a label plus a
//! warm incremental [`Engine`]. Building the engine at publish time
//! materializes the views, the witness-provenance index, and the
//! ΔV-independent IR layer once per instance lineage; every request
//! against the epoch reads the engine's installed projection through
//! its `Arc` snapshot, and requests that add their own ΔV fork a
//! per-request problem via [`Engine::with_delta`] — an `O(active)`
//! projection over the shared static layer instead of a full
//! recompile. Delta publishes (`publish_delta`) clone the engine,
//! apply the batch incrementally, and publish the result as the next
//! epoch, so an epoch step costs ΔV-proportional work, not a rebuild.

use delprop_core::{CoreError, Engine, Problem};
use delprop_json::Json;
use delprop_workload::figures;
use delprop_workload::forest::{self, ForestParams};
use delprop_workload::random_db::{self, RandomDbParams};

/// How to build a problem instance, as it travels over the wire in
/// `publish` requests and CLI flags.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceSpec {
    /// The pivot-forest workload generator.
    Forest {
        /// Chain relations (levels).
        levels: usize,
        /// Window width in atoms.
        window: usize,
        /// Parallel chains merging like a binary tree.
        chains: usize,
        /// Fraction of view tuples marked deleted.
        delete_fraction: f64,
        /// Weighted preserved views?
        weighted: bool,
        /// Generator seed.
        seed: u64,
    },
    /// The random-database workload generator.
    Random {
        /// Binary relations in the pool.
        num_relations: usize,
        /// Queries (chains over distinct relations).
        num_queries: usize,
        /// Atoms per query.
        atoms_per_query: usize,
        /// Join-value domain size.
        domain: usize,
        /// Tuples per relation.
        tuples_per_relation: usize,
        /// Fraction of view tuples marked deleted.
        delete_fraction: f64,
        /// Weighted preserved views?
        weighted: bool,
        /// Generator seed.
        seed: u64,
    },
    /// The paper's running example (Figure 1).
    Fig1,
}

impl Default for InstanceSpec {
    fn default() -> Self {
        let p = ForestParams::default();
        InstanceSpec::Forest {
            levels: p.levels,
            window: p.window,
            chains: p.chains,
            delete_fraction: p.delete_fraction,
            weighted: p.weighted,
            seed: 1,
        }
    }
}

impl InstanceSpec {
    /// Build the problem (the IR warms when the engine is built).
    pub fn build(&self) -> Result<Problem, CoreError> {
        Ok(match *self {
            InstanceSpec::Forest {
                levels,
                window,
                chains,
                delete_fraction,
                weighted,
                seed,
            } => forest::generate(
                ForestParams {
                    levels,
                    window,
                    chains,
                    delete_fraction,
                    weighted,
                },
                seed,
            ),
            InstanceSpec::Random {
                num_relations,
                num_queries,
                atoms_per_query,
                domain,
                tuples_per_relation,
                delete_fraction,
                weighted,
                seed,
            } => random_db::generate(
                RandomDbParams {
                    num_relations,
                    num_queries,
                    atoms_per_query,
                    domain,
                    tuples_per_relation,
                    delete_fraction,
                    weighted,
                },
                seed,
            ),
            InstanceSpec::Fig1 => figures::fig1_problem(),
        })
    }

    /// Render to the wire JSON document.
    pub fn to_json(&self) -> Json {
        match *self {
            InstanceSpec::Forest {
                levels,
                window,
                chains,
                delete_fraction,
                weighted,
                seed,
            } => Json::obj(vec![
                ("kind", Json::str("forest")),
                ("levels", Json::uint(levels as u64)),
                ("window", Json::uint(window as u64)),
                ("chains", Json::uint(chains as u64)),
                ("delete_fraction", Json::Num(delete_fraction)),
                ("weighted", Json::Bool(weighted)),
                ("seed", Json::uint(seed)),
            ]),
            InstanceSpec::Random {
                num_relations,
                num_queries,
                atoms_per_query,
                domain,
                tuples_per_relation,
                delete_fraction,
                weighted,
                seed,
            } => Json::obj(vec![
                ("kind", Json::str("random")),
                ("num_relations", Json::uint(num_relations as u64)),
                ("num_queries", Json::uint(num_queries as u64)),
                ("atoms_per_query", Json::uint(atoms_per_query as u64)),
                ("domain", Json::uint(domain as u64)),
                (
                    "tuples_per_relation",
                    Json::uint(tuples_per_relation as u64),
                ),
                ("delete_fraction", Json::Num(delete_fraction)),
                ("weighted", Json::Bool(weighted)),
                ("seed", Json::uint(seed)),
            ]),
            InstanceSpec::Fig1 => Json::obj(vec![("kind", Json::str("fig1"))]),
        }
    }

    /// Parse a wire JSON document, filling absent fields from the
    /// generator defaults.
    pub fn from_json(j: &Json) -> Result<InstanceSpec, String> {
        let kind = match j.get("kind") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err("spec requires a string `kind`".to_string()),
        };
        let num = |key: &str| j.get(key).and_then(Json::as_num);
        let usize_or = |key: &str, d: usize| num(key).map_or(d, |n| n as usize);
        let f64_or = |key: &str, d: f64| num(key).unwrap_or(d);
        let bool_or = |key: &str, d: bool| match j.get(key) {
            Some(Json::Bool(b)) => *b,
            _ => d,
        };
        let seed = num("seed").map_or(1, |n| n as u64);
        match kind {
            "forest" => {
                let d = ForestParams::default();
                Ok(InstanceSpec::Forest {
                    levels: usize_or("levels", d.levels),
                    window: usize_or("window", d.window),
                    chains: usize_or("chains", d.chains),
                    delete_fraction: f64_or("delete_fraction", d.delete_fraction),
                    weighted: bool_or("weighted", d.weighted),
                    seed,
                })
            }
            "random" => {
                let d = RandomDbParams::default();
                Ok(InstanceSpec::Random {
                    num_relations: usize_or("num_relations", d.num_relations),
                    num_queries: usize_or("num_queries", d.num_queries),
                    atoms_per_query: usize_or("atoms_per_query", d.atoms_per_query),
                    domain: usize_or("domain", d.domain),
                    tuples_per_relation: usize_or("tuples_per_relation", d.tuples_per_relation),
                    delete_fraction: f64_or("delete_fraction", d.delete_fraction),
                    weighted: bool_or("weighted", d.weighted),
                    seed,
                })
            }
            "fig1" => Ok(InstanceSpec::Fig1),
            other => Err(format!("unknown instance kind `{other}`")),
        }
    }
}

/// One epoch's payload: a label plus a warm incremental engine, shared
/// by every request that snapshots the epoch.
#[derive(Debug)]
pub struct ServingInstance {
    /// Human-readable label reported by `health`/`epoch`.
    pub label: String,
    /// The incremental engine: instance, provenance index, and the
    /// installed projection, warm at publish time.
    pub engine: Engine,
}

impl ServingInstance {
    /// Build from a spec, warming the engine's projection.
    pub fn build(label: impl Into<String>, spec: &InstanceSpec) -> Result<Self, CoreError> {
        Ok(ServingInstance {
            label: label.into(),
            engine: Engine::new(spec.build()?)?,
        })
    }

    /// The served problem (current ΔV, warm compiled IR).
    pub fn problem(&self) -> &Problem {
        self.engine.problem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip_and_build() {
        let specs = vec![
            InstanceSpec::default(),
            InstanceSpec::Random {
                num_relations: 3,
                num_queries: 2,
                atoms_per_query: 2,
                domain: 6,
                tuples_per_relation: 12,
                delete_fraction: 0.3,
                weighted: true,
                seed: 7,
            },
            InstanceSpec::Fig1,
        ];
        for spec in specs {
            let j = spec.to_json();
            assert_eq!(InstanceSpec::from_json(&j).unwrap(), spec, "{spec:?}");
            let p = spec.build().unwrap();
            assert!(p.norm_delta() > 0, "{spec:?} generated no deletions");
        }
    }

    #[test]
    fn spec_parsing_fills_defaults() {
        let j = delprop_json::parse(r#"{"kind":"forest","seed":9}"#).unwrap();
        let d = ForestParams::default();
        match InstanceSpec::from_json(&j).unwrap() {
            InstanceSpec::Forest {
                levels,
                window,
                chains,
                seed,
                ..
            } => {
                assert_eq!(
                    (levels, window, chains, seed),
                    (d.levels, d.window, d.chains, 9)
                );
            }
            other => panic!("wrong spec {other:?}"),
        }
    }
}
