//! Minimal zero-dependency JSON: a value type with **sorted-key**
//! rendering, a parser, and an artifact writer that refuses
//! nondeterministic output.
//!
//! Extracted from the bench harness (which re-exports it as
//! `delprop_bench::json`) so the serving daemon's wire protocol can
//! share the same value type without depending on the harness.
//!
//! Bench artifacts (`artifacts/BENCH_*.json`) are diffed by the CI
//! bench gate, so their byte layout must be a pure function of the
//! measured values: object keys render in sorted order, numbers render
//! in Rust's shortest-round-trip form (so parsing a rendered file
//! recovers bit-identical values), and [`write_artifact`] rejects any
//! object with duplicate keys — the one way a caller could smuggle
//! order-dependence past the sort.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers included; i64 up to 2^53 round-trips).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as insertion-ordered pairs; **rendering sorts keys**.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An integer value.
    pub fn int(v: i64) -> Json {
        Json::Num(v as f64)
    }

    /// An unsigned integer value.
    pub fn uint(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A float rounded to `decimals` places — keeps artifacts readable
    /// without hurting determinism (rounding is itself deterministic).
    pub fn rounded(v: f64, decimals: u32) -> Json {
        let scale = 10f64.powi(decimals as i32);
        Json::Num((v * scale).round() / scale)
    }

    /// A string value.
    pub fn str<S: Into<String>>(v: S) -> Json {
        Json::Str(v.into())
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object keys in sorted order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => {
                let mut keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                keys.sort_unstable();
                keys
            }
            _ => Vec::new(),
        }
    }

    /// Render with sorted object keys. Top-level arrays of objects get
    /// one row per line (the layout the bench gate diffs); everything
    /// else is compact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self {
            Json::Arr(rows) if rows.iter().all(|r| matches!(r, Json::Obj(_))) => {
                out.push_str("[\n");
                for (i, row) in rows.iter().enumerate() {
                    out.push_str("  ");
                    render_value(row, &mut out);
                    if i + 1 < rows.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push(']');
            }
            other => render_value(other, &mut out),
        }
        out.push('\n');
        out
    }

    /// Depth-first check for duplicate keys inside any object. Returns
    /// the first offending key.
    fn find_duplicate_key(&self) -> Option<&str> {
        match self {
            Json::Obj(pairs) => {
                let mut keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                keys.sort_unstable();
                for w in keys.windows(2) {
                    if let [a, b] = w {
                        if a == b {
                            return Some(a);
                        }
                    }
                }
                pairs.iter().find_map(|(_, v)| v.find_duplicate_key())
            }
            Json::Arr(items) => items.iter().find_map(|v| v.find_duplicate_key()),
            _ => None,
        }
    }
}

fn render_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => render_num(*n, out),
        Json::Str(s) => render_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            let mut sorted: Vec<&(String, Json)> = pairs.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            out.push('{');
            for (i, (k, val)) in sorted.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_str(k, out);
                out.push_str(": ");
                render_value(val, out);
            }
            out.push('}');
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; an artifact containing one is a bug we
        // want visible, not silently nulled.
        let _ = write!(out, "\"{n}\"");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-round-trip float formatting: deterministic,
        // and parsing the text recovers the identical f64.
        let _ = write!(out, "{n}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render `json` (sorted keys) and write it to `path`, creating parent
/// directories. Refuses objects with duplicate keys — the only way the
/// sorted rendering could become order-dependent.
pub fn write_artifact<P: AsRef<Path>>(path: P, json: &Json) -> io::Result<String> {
    if let Some(key) = json.find_duplicate_key() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("refusing nondeterministic artifact: duplicate key {key:?}"),
        ));
    }
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json.render())?;
    Ok(path.display().to_string())
}

/// Parse a JSON document. Accepts exactly what [`Json::render`] emits
/// plus ordinary whitespace variations — enough for the bench gate to
/// read baselines, not a general-purpose validator.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// The bytes from `pos` on; empty past the end (never panics).
fn tail(bytes: &[u8], pos: usize) -> &[u8] {
    bytes.get(pos..).unwrap_or_default()
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    // lint:allow(panic): index guarded by the same-line length check
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if tail(bytes, *pos).starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if tail(bytes, *pos).starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if tail(bytes, *pos).starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            // lint:allow(panic): index guarded by the length check in the
            // same `while` condition
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
                .map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8: copy the whole char.
                let rest = std::str::from_utf8(tail(bytes, *pos)).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unexpected end in string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_keys_regardless_of_insertion_order() {
        let a = Json::obj(vec![
            ("zebra", Json::int(1)),
            ("alpha", Json::int(2)),
            ("mid", Json::str("x")),
        ]);
        let b = Json::obj(vec![
            ("mid", Json::str("x")),
            ("alpha", Json::int(2)),
            ("zebra", Json::int(1)),
        ]);
        assert_eq!(a.render(), b.render(), "key order must not leak");
        assert_eq!(a.render(), "{\"alpha\": 2, \"mid\": \"x\", \"zebra\": 1}\n");
    }

    #[test]
    fn array_of_objects_renders_one_row_per_line() {
        let doc = Json::Arr(vec![
            Json::obj(vec![("b", Json::int(1)), ("a", Json::int(2))]),
            Json::obj(vec![("a", Json::int(3)), ("b", Json::int(4))]),
        ]);
        assert_eq!(
            doc.render(),
            "[\n  {\"a\": 2, \"b\": 1},\n  {\"a\": 3, \"b\": 4}\n]\n"
        );
    }

    #[test]
    fn numbers_round_trip_through_render_and_parse() {
        for v in [0.0, 1.0, -3.5, 123456.789, 0.1, 1e-9, 9.007e15] {
            let rendered = Json::Num(v).render();
            let parsed = parse(rendered.trim()).unwrap();
            assert_eq!(parsed.as_num(), Some(v), "{rendered}");
        }
        assert_eq!(Json::int(42).render(), "42\n");
        assert_eq!(Json::rounded(1.23456, 2).render(), "1.23\n");
    }

    #[test]
    fn parse_handles_objects_arrays_strings() {
        let doc =
            parse("[\n  {\"a\": 1, \"s\": \"x\\\"y\"},\n  {\"a\": 2.5, \"s\": \"\"}\n]").unwrap();
        let rows = doc.as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("a").unwrap().as_num(), Some(1.0));
        assert_eq!(rows[0].get("s"), Some(&Json::Str("x\"y".into())));
        assert_eq!(rows[1].get("a").unwrap().as_num(), Some(2.5));
        assert!(parse("[1, 2] trailing").is_err());
    }

    #[test]
    fn duplicate_keys_are_refused_by_write_artifact() {
        let bad = Json::Arr(vec![Json::Obj(vec![
            ("k".to_string(), Json::int(1)),
            ("k".to_string(), Json::int(2)),
        ])]);
        let dir = std::env::temp_dir().join("delprop_json_test");
        let err = write_artifact(dir.join("bad.json"), &bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn written_artifact_round_trips() {
        let doc = Json::Arr(vec![Json::obj(vec![
            ("chains", Json::int(64)),
            ("speedup", Json::rounded(4.56789, 3)),
            ("winner", Json::str("dp_tree")),
        ])]);
        let dir = std::env::temp_dir().join("delprop_json_test");
        let path = dir.join("ok.json");
        let written = write_artifact(&path, &doc).unwrap();
        let text = std::fs::read_to_string(&written).unwrap();
        let parsed = parse(&text).unwrap();
        let row = &parsed.as_arr().unwrap()[0];
        assert_eq!(row.get("chains").unwrap().as_num(), Some(64.0));
        assert_eq!(row.get("speedup").unwrap().as_num(), Some(4.568));
        assert_eq!(row.keys(), vec!["chains", "speedup", "winner"]);
    }
}
