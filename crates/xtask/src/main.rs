//! Repo automation tasks. The only task today is `lint`:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! A zero-dependency scanner enforcing the repository's
//! concurrency-hygiene invariants (DESIGN.md §11), run in CI alongside
//! clippy and rustfmt:
//!
//! 1. **no-unwrap** — `.unwrap()` / `.expect(` are forbidden in
//!    `crates/core/src/solvers/` outside `#[cfg(test)]` items. Solver
//!    code runs inside the portfolio's `catch_unwind` isolation, but a
//!    panic still costs the member its run; fallible paths must thread
//!    `Result` (or justify themselves, see *allow markers* below).
//! 2. **no-raw-atomics** — `std::sync::atomic` types must not be named
//!    outside `crates/core/src/runtime/sync.rs`: all runtime code goes
//!    through the `runtime::sync` facade so the `delprop_model`
//!    scheduler sees every operation. `std::sync::atomic::Ordering`
//!    itself is allowed everywhere (it is pure data, re-exported
//!    unchanged in both facade modes), and `crates/modelcheck` — the
//!    layer that *implements* the facade — is exempt.
//! 3. **no-raw-clock** — `Instant::now` is forbidden outside
//!    `crates/core/src/runtime/budget.rs` (the runtime's single
//!    sanctioned clock read, `budget::now`) and `crates/bench`.
//! 4. **safety-comments** — every `unsafe` keyword in code must carry a
//!    `SAFETY:` comment on the same line or in the contiguous comment
//!    block directly above it, and `crates/core/src/lib.rs` must keep
//!    `#![deny(unsafe_op_in_unsafe_fn)]`.
//! 5. **no-sleep** — `thread::sleep` is forbidden in product code
//!    outside `crates/server/src/backoff.rs` (the daemon's sanctioned,
//!    deadline-clamped retry sleep) and
//!    `crates/core/src/runtime/fault.rs` (fault injection). A bare
//!    sleep on a serving path blocks a conn thread without observing
//!    cancellation or deadlines; poll a budget instead.
//!    Integration-test files (under any `tests/` directory) and
//!    `#[cfg(test)]` items are exempt — tests stage timing scenarios.
//! 6. **no-hash-in-hot-paths** — `HashSet`/`HashMap` are forbidden in
//!    the dense solver hot paths (`crates/core/src/solvers/`,
//!    `crates/core/src/ir/`, `crates/core/src/classify.rs`,
//!    `crates/core/src/solution.rs`, `crates/setcover/src/`, and
//!    `crates/lp/src/`). Those layers work over the compiled dense-id
//!    universe, where a packed `BitSet`/`BitMatrix` row or a flat
//!    counter array is both faster and allocation-free; a hash
//!    container on such a path is almost always an accidental
//!    regression to the pre-kernel design. Justify real needs with
//!    `// lint:allow(hash): <reason>`.
//! 7. **no-std-thread-in-shard** — `std::thread` must not be named
//!    anywhere in `crates/core/src/shard/` (tests included): the
//!    work-stealing deque and scheduler are model-checked, so every
//!    spawn, scope, and yield must go through the `runtime::sync`
//!    facade (`sync::thread::…`) or the `delprop_model` scheduler is
//!    blind to it. Justify exceptions with
//!    `// lint:allow(thread): <reason>`.
//!
//! **Allow markers.** A violating line is accepted when it, or one of
//! the four lines above it, carries a justification marker for its
//! rule: `// lint:allow(unwrap): <why this cannot fail>` (likewise
//! `lint:allow(atomics)`, `lint:allow(clock)`, `lint:allow(sleep)`,
//! `lint:allow(hash)`). The justification text is mandatory — a bare
//! marker is itself a violation.
//!
//! The scanner is intentionally line-based and dependency-free: it
//! strips line/block comments and string literals with a small state
//! machine (enough to avoid false positives from prose and patterns in
//! strings), tracks `#[cfg(test)]` item bodies by brace depth, and
//! never needs a full Rust parser for these five textual invariants.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint    enforce the repo invariants (see crates/xtask/src/main.rs)");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `lint`)");
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "benches"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        violations.extend(scan_file(&rel, &text));
    }
    violations.extend(check_core_denies_unsafe_ops(&root));

    if violations.is_empty() {
        println!("xtask lint: OK ({} files)", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// `crates/xtask` -> repository root.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels under the repo root")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // missing top-level dirs (e.g. no benches/) are fine
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

// -------------------------------------------------------------------
// Violations
// -------------------------------------------------------------------

struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// -------------------------------------------------------------------
// Per-file scan
// -------------------------------------------------------------------

/// How many lines above a violation an allow marker / SAFETY comment
/// may sit.
const MARKER_LOOKBACK: usize = 4;

fn scan_file(rel: &str, text: &str) -> Vec<Violation> {
    let raw: Vec<&str> = text.lines().collect();
    let code = strip_file(&raw);
    let in_test = test_block_mask(&code);

    let unwrap_scope = rel.starts_with("crates/core/src/solvers/");
    let atomics_scope =
        !rel.starts_with("crates/modelcheck/") && rel != "crates/core/src/runtime/sync.rs";
    let clock_scope =
        !rel.starts_with("crates/bench/") && rel != "crates/core/src/runtime/budget.rs";
    // Integration-test files (`tests/` at the repo root or inside a
    // crate) may sleep to stage timing scenarios; product code may not.
    let sleep_scope = rel != "crates/server/src/backoff.rs"
        && rel != "crates/core/src/runtime/fault.rs"
        && !rel.starts_with("tests/")
        && !rel.contains("/tests/");
    // The serving daemon must read compiled IRs through the epoch
    // engine's installed projections (`Engine::problem()` /
    // `Engine::with_delta`), never trigger its own compiles: a direct
    // `Problem::compiled()` on a cloned problem silently rebuilds the
    // whole index per request, defeating incremental maintenance.
    let compiled_scope = rel.starts_with("crates/server/src/");
    // The shard module's concurrency must stay model-checkable: even
    // its tests run under the `delprop_model` scheduler, so a raw
    // `std::thread` anywhere in the module escapes the explored space.
    let shard_thread_scope = rel.starts_with("crates/core/src/shard/");
    let hash_scope = rel.starts_with("crates/core/src/solvers/")
        || rel.starts_with("crates/core/src/ir/")
        || rel == "crates/core/src/classify.rs"
        || rel == "crates/core/src/solution.rs"
        || rel.starts_with("crates/setcover/src/")
        || rel.starts_with("crates/lp/src/");

    let mut out = Vec::new();
    for (i, stripped) in code.iter().enumerate() {
        let lineno = i + 1;

        if unwrap_scope
            && !in_test[i]
            && (stripped.contains(".unwrap()") || stripped.contains(".expect("))
            && !allowed(&raw, i, "unwrap")
        {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "no-unwrap",
                message: "`.unwrap()`/`.expect(` in solver code: return a typed error, or \
                          justify with `// lint:allow(unwrap): <reason>`"
                    .to_string(),
            });
        }

        if atomics_scope && names_raw_atomic(stripped) && !allowed(&raw, i, "atomics") {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "no-raw-atomics",
                message: "raw `std::sync::atomic` outside the `runtime::sync` facade: the \
                          `delprop_model` scheduler cannot see this operation"
                    .to_string(),
            });
        }

        if clock_scope && stripped.contains("Instant::now") && !allowed(&raw, i, "clock") {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "no-raw-clock",
                message: "`Instant::now` outside `runtime/budget.rs`: go through the \
                          `budget::now()` choke point"
                    .to_string(),
            });
        }

        if sleep_scope
            && !in_test[i]
            && stripped.contains("thread::sleep")
            && !allowed(&raw, i, "sleep")
        {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "no-sleep",
                message: "`thread::sleep` outside `crates/server/src/backoff.rs`: blocking \
                          sleeps belong to the jittered-backoff choke point (deadline-clamped, \
                          seeded) — poll a budget/cancel token instead, or justify with \
                          `// lint:allow(sleep): <reason>`"
                    .to_string(),
            });
        }

        if hash_scope
            && !in_test[i]
            && (contains_word(stripped, "HashSet") || contains_word(stripped, "HashMap"))
            && !allowed(&raw, i, "hash")
        {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "no-hash-in-hot-paths",
                message: "`HashSet`/`HashMap` in a dense solver hot path: use a packed \
                          `BitSet`/`BitMatrix` row or flat counters over the compiled ids, \
                          or justify with `// lint:allow(hash): <reason>`"
                    .to_string(),
            });
        }

        if compiled_scope
            && !in_test[i]
            && (stripped.contains(".compiled()") || stripped.contains(".compiled_arc("))
            && !allowed(&raw, i, "compiled")
        {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "no-direct-compile-in-server",
                message: "direct `Problem::compiled()` in the serving daemon: read the IR \
                          through the epoch engine (`Engine::problem()` / `with_delta`) so \
                          requests share incremental projections, or justify with \
                          `// lint:allow(compiled): <reason>`"
                    .to_string(),
            });
        }

        if shard_thread_scope && stripped.contains("std::thread") && !allowed(&raw, i, "thread") {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "no-std-thread-in-shard",
                message: "raw `std::thread` in the shard module: spawn through the \
                          `runtime::sync` facade (`sync::thread::scope`) so the \
                          `delprop_model` scheduler can interleave it, or justify with \
                          `// lint:allow(thread): <reason>`"
                    .to_string(),
            });
        }

        if contains_word(stripped, "unsafe") && !has_safety_comment(&raw, i) {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "safety-comments",
                message: "`unsafe` without a `// SAFETY:` comment on the line or in the \
                          comment block directly above"
                    .to_string(),
            });
        }
    }
    out
}

/// `crates/core/src/lib.rs` must keep its crate-level unsafe hygiene
/// attribute — the rule every `SAFETY:` comment in that crate leans on.
fn check_core_denies_unsafe_ops(root: &Path) -> Vec<Violation> {
    let path = root.join("crates/core/src/lib.rs");
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    if text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
        Vec::new()
    } else {
        vec![Violation {
            file: "crates/core/src/lib.rs".to_string(),
            line: 1,
            rule: "safety-comments",
            message: "missing `#![deny(unsafe_op_in_unsafe_fn)]` at the crate root".to_string(),
        }]
    }
}

// -------------------------------------------------------------------
// Marker + pattern helpers
// -------------------------------------------------------------------

/// Whether line `i` (0-based) carries — on itself or within
/// `MARKER_LOOKBACK` lines above — a `lint:allow(<rule>): <reason>`
/// marker with a non-empty reason.
fn allowed(raw: &[&str], i: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    let lo = i.saturating_sub(MARKER_LOOKBACK);
    raw[lo..=i].iter().any(|line| {
        line.find(&marker).is_some_and(|at| {
            let rest = &line[at + marker.len()..];
            // Demand `: <non-empty justification>` after the marker.
            rest.strip_prefix(':')
                .is_some_and(|reason| !reason.trim().is_empty())
        })
    })
}

/// `std::sync::atomic` uses that are not the (allowed) `Ordering` path.
fn names_raw_atomic(stripped: &str) -> bool {
    let mut rest = stripped;
    while let Some(at) = rest.find("std::sync::atomic") {
        let after = &rest[at + "std::sync::atomic".len()..];
        if !after.starts_with("::Ordering") {
            return true;
        }
        rest = after;
    }
    false
}

/// Whether `needle` occurs in `haystack` as a whole word (not as part
/// of a longer identifier).
fn contains_word(haystack: &str, needle: &str) -> bool {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(at) = haystack[from..].find(needle) {
        let start = from + at;
        let end = start + needle.len();
        let ok_left = start == 0 || !is_ident(bytes[start - 1]);
        let ok_right = end == bytes.len() || !is_ident(bytes[end]);
        if ok_left && ok_right {
            return true;
        }
        from = end;
    }
    false
}

/// A `SAFETY:` comment counts when it is on the violating line itself
/// or anywhere in the contiguous run of comment/attribute/blank lines
/// directly above it (long safety arguments span many comment lines).
fn has_safety_comment(raw: &[&str], i: usize) -> bool {
    if raw[i].contains("SAFETY:") {
        return true;
    }
    for line in raw[..i].iter().rev() {
        let t = line.trim();
        let is_annotation = t.is_empty()
            || t.starts_with("//")
            || t.starts_with("/*")
            || t.starts_with('*')
            || t.starts_with("#[")
            || t.starts_with("#![");
        if !is_annotation {
            return false;
        }
        if t.contains("SAFETY:") {
            return true;
        }
    }
    false
}

// -------------------------------------------------------------------
// Comment/string stripping + cfg(test) tracking
// -------------------------------------------------------------------

/// Strip comments and string-literal *contents* from every line, so
/// pattern matching only ever sees code. Handles `//` line comments,
/// multi-line `/* */` block comments, `"…"` strings with escapes, and
/// char literals (including `'"'` and `'\''`); lifetimes (`'a`) pass
/// through. Raw strings are treated as plain strings — good enough for
/// a linter over this codebase, where `r#"…"#` does not appear outside
/// test data.
fn strip_file(raw: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(raw.len());
    let mut in_block_comment = false;
    for line in raw {
        out.push(strip_line(line, &mut in_block_comment));
    }
    out
}

fn strip_line(line: &str, in_block_comment: &mut bool) -> String {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        if *in_block_comment {
            if b[i..].starts_with(b"*/") {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match b[i] {
            b'/' if b[i..].starts_with(b"//") => break, // rest is comment
            b'/' if b[i..].starts_with(b"/*") => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // Skip the string body, honouring escapes.
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str("\"\"");
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes with
                // a quote one or two (escaped) positions later.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    out.push_str("' '");
                    i += 3; // '\x
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.push_str("' '");
                    i += 3; // 'c'
                } else {
                    out.push('\''); // lifetime
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// For each line, whether it belongs to the body of a `#[cfg(test)]`
/// item (module or function), tracked by brace depth on the stripped
/// lines. The attribute line itself and any attributes/doc lines
/// between it and the opening brace are included.
fn test_block_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut in_test = false;
    let mut pending = false;
    let mut depth: i64 = 0;
    for (i, line) in code.iter().enumerate() {
        if in_test {
            mask[i] = true;
            depth += brace_delta(line);
            if depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if pending {
            mask[i] = true;
            if line.contains('{') {
                pending = false;
                in_test = true;
                depth = brace_delta(line);
                if depth <= 0 {
                    in_test = false; // single-line item
                }
            }
            continue;
        }
        if line.contains("#[cfg(test)]") {
            mask[i] = true;
            pending = true;
        }
    }
    mask
}

fn brace_delta(line: &str) -> i64 {
    let opens = line.bytes().filter(|&b| b == b'{').count() as i64;
    let closes = line.bytes().filter(|&b| b == b'}').count() as i64;
    opens - closes
}

// -------------------------------------------------------------------
// Tests
// -------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, text: &str) -> Vec<String> {
        scan_file(rel, text)
            .into_iter()
            .map(|v| format!("{}:{} {}", v.line, v.rule, ""))
            .map(|s| s.trim().to_string())
            .collect()
    }

    #[test]
    fn unwrap_flagged_only_in_solver_scope_outside_tests() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { y.unwrap(); }\n\
                   }\n";
        let v = scan("crates/core/src/solvers/foo.rs", src);
        assert_eq!(v, ["1:no-unwrap"]);
        assert!(scan("crates/core/src/runtime/foo.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_needs_a_justification() {
        let bare = "// lint:allow(unwrap):\nx.unwrap();\n";
        assert_eq!(
            scan("crates/core/src/solvers/foo.rs", bare),
            ["2:no-unwrap"]
        );
        let justified = "// lint:allow(unwrap): constructed two lines up\nx.unwrap();\n";
        assert!(scan("crates/core/src/solvers/foo.rs", justified).is_empty());
    }

    #[test]
    fn sleep_flagged_outside_backoff_fault_and_tests() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(scan("crates/server/src/daemon.rs", src), ["1:no-sleep"]);
        assert_eq!(
            scan("crates/core/src/runtime/budget.rs", src),
            ["1:no-sleep"]
        );
        // The two sanctioned modules and test files are exempt.
        assert!(scan("crates/server/src/backoff.rs", src).is_empty());
        assert!(scan("crates/core/src/runtime/fault.rs", src).is_empty());
        assert!(scan("tests/fault_injection.rs", src).is_empty());
        assert!(scan("crates/server/tests/chaos.rs", src).is_empty());
        // `#[cfg(test)]` items inside product files are exempt too.
        let in_test = "#[cfg(test)]\n\
                       mod tests {\n\
                           fn g() { std::thread::sleep(d); }\n\
                       }\n";
        assert!(scan("crates/server/src/daemon.rs", in_test).is_empty());
        // An allow marker with a reason is honored; prose is not code.
        let justified = "// lint:allow(sleep): startup settle, not on a request path\n\
                         std::thread::sleep(d);\n";
        assert!(scan("crates/server/src/state.rs", justified).is_empty());
        let comment = "// never call thread::sleep here\n";
        assert!(scan("crates/server/src/daemon.rs", comment).is_empty());
    }

    #[test]
    fn std_thread_flagged_in_shard_module_even_in_tests() {
        let src = "fn f() { std::thread::scope(|s| {}); }\n";
        assert_eq!(
            scan("crates/core/src/shard/scheduler.rs", src),
            ["1:no-std-thread-in-shard"]
        );
        // Tests in the module are NOT exempt: they must also run under
        // the model scheduler.
        let in_test = "#[cfg(test)]\n\
                       mod tests {\n\
                           fn g() { std::thread::spawn(|| {}); }\n\
                       }\n";
        assert_eq!(
            scan("crates/core/src/shard/deque.rs", in_test),
            ["3:no-std-thread-in-shard"]
        );
        // The facade path and other modules are fine.
        let facade = "fn f() { sync::thread::scope(|s| {}); }\n";
        assert!(scan("crates/core/src/shard/scheduler.rs", facade).is_empty());
        assert!(scan("crates/core/src/runtime/portfolio.rs", src).is_empty());
        // A justified exception is honored.
        let justified = "// lint:allow(thread): std fallback when the facade is compiled out\n\
                         fn f() { std::thread::scope(|s| {}); }\n";
        assert!(scan("crates/core/src/shard/mod.rs", justified).is_empty());
    }

    #[test]
    fn raw_atomics_flagged_but_ordering_and_facade_allowed() {
        let import = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(
            scan("crates/core/src/ir/mod.rs", import),
            ["1:no-raw-atomics"]
        );
        assert!(scan("crates/core/src/runtime/sync.rs", import).is_empty());
        assert!(scan("crates/modelcheck/src/atomic.rs", import).is_empty());
        let ordering = "use std::sync::atomic::Ordering::Relaxed;\n";
        assert!(scan("crates/core/src/ir/mod.rs", ordering).is_empty());
        let comment = "// std::sync::atomic is forbidden here\n";
        assert!(scan("crates/core/src/ir/mod.rs", comment).is_empty());
    }

    #[test]
    fn clock_flagged_outside_budget_and_bench() {
        let src = "let t = Instant::now();\n";
        assert_eq!(scan("crates/core/src/ir/mod.rs", src), ["1:no-raw-clock"]);
        assert!(scan("crates/core/src/runtime/budget.rs", src).is_empty());
        assert!(scan("crates/bench/src/main.rs", src).is_empty());
        let in_string = "let s = \"Instant::now\";\n";
        assert!(scan("crates/core/src/ir/mod.rs", in_string).is_empty());
    }

    #[test]
    fn direct_compiles_flagged_in_server_product_code_only() {
        let call = "let ir = problem.compiled();\n";
        assert_eq!(
            scan("crates/server/src/state.rs", call),
            ["1:no-direct-compile-in-server"]
        );
        let arc = "let ir = problem.compiled_arc();\n";
        assert_eq!(
            scan("crates/server/src/engine.rs", arc),
            ["1:no-direct-compile-in-server"]
        );
        // Core, tests, and `#[cfg(test)]` items are exempt.
        assert!(scan("crates/core/src/problem.rs", call).is_empty());
        assert!(scan("crates/server/tests/serve.rs", call).is_empty());
        let in_test = "#[cfg(test)]\n\
                       mod tests {\n\
                           fn g() { let _ = p.compiled(); }\n\
                       }\n";
        assert!(scan("crates/server/src/state.rs", in_test).is_empty());
        // A justified allow marker is honored.
        let justified = "// lint:allow(compiled): warm-up outside any request path\n\
                         let _ = problem.compiled();\n";
        assert!(scan("crates/server/src/state.rs", justified).is_empty());
    }

    #[test]
    fn hash_containers_flagged_in_hot_paths_only() {
        let import = "use std::collections::HashSet;\n";
        for hot in [
            "crates/core/src/solvers/primal_dual.rs",
            "crates/core/src/ir/mod.rs",
            "crates/core/src/classify.rs",
            "crates/core/src/solution.rs",
            "crates/setcover/src/greedy.rs",
            "crates/lp/src/simplex.rs",
        ] {
            assert_eq!(scan(hot, import), ["1:no-hash-in-hot-paths"], "{hot}");
        }
        // Cold layers, test files, and `#[cfg(test)]` items are exempt.
        assert!(scan("crates/core/src/problem.rs", import).is_empty());
        assert!(scan("crates/server/src/daemon.rs", import).is_empty());
        let in_test = "#[cfg(test)]\n\
                       mod tests {\n\
                           use std::collections::HashMap;\n\
                       }\n";
        assert!(scan("crates/core/src/solvers/foo.rs", in_test).is_empty());
        // A justified marker is honored; prose and identifiers are not.
        let justified = "// lint:allow(hash): interning table keyed by tuple value, not dense id\n\
                         let m: HashMap<Value, u32> = HashMap::new();\n";
        assert!(scan("crates/core/src/ir/mod.rs", justified).is_empty());
        let comment = "// HashMap would be wrong here\n";
        assert!(scan("crates/core/src/ir/mod.rs", comment).is_empty());
        let ident = "fn not_a_HashMapLike() {}\n";
        assert!(scan("crates/core/src/ir/mod.rs", ident).is_empty());
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        let bad = "fn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(scan("crates/core/src/x.rs", bad), ["2:safety-comments"]);
        let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n";
        assert!(scan("crates/core/src/x.rs", good).is_empty());
        // A multi-line comment block directly above still counts …
        let block = "fn f() {\n    // SAFETY: a long argument\n    // spanning lines.\n    unsafe { g() }\n}\n";
        assert!(scan("crates/core/src/x.rs", block).is_empty());
        // … but code between the comment and the `unsafe` breaks it.
        let gapped = "fn f() {\n    // SAFETY: stale.\n    h();\n    unsafe { g() }\n}\n";
        assert_eq!(scan("crates/core/src/x.rs", gapped), ["4:safety-comments"]);
        // Identifiers containing the word are not the keyword.
        let ident = "fn rejects_unsafe_head() {}\n";
        assert!(scan("crates/core/src/x.rs", ident).is_empty());
        // Prose in doc comments is not code.
        let doc = "/// This query would be unsafe.\nfn f() {}\n";
        assert!(scan("crates/core/src/x.rs", doc).is_empty());
    }

    #[test]
    fn stripper_handles_strings_chars_and_block_comments() {
        let mut blk = false;
        assert_eq!(
            strip_line("let c = '\"'; x.unwrap();", &mut blk),
            "let c = ' '; x.unwrap();"
        );
        assert!(!blk);
        assert_eq!(strip_line("a /* c1 */ b", &mut blk), "a  b");
        assert_eq!(strip_line("a /* open", &mut blk), "a ");
        assert!(blk);
        assert_eq!(strip_line("still closed */ tail", &mut blk), " tail");
        assert!(!blk);
        assert_eq!(
            strip_line("let s = \"esc \\\" quote\"; rest", &mut blk),
            "let s = \"\"; rest"
        );
        assert_eq!(
            strip_line("fn f<'a>(x: &'a str) {}", &mut blk),
            "fn f<'a>(x: &'a str) {}"
        );
    }

    #[test]
    fn test_mask_covers_nested_braces_and_returns_to_code() {
        let src = "fn a() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn b() { if x { y() } }\n\
                   }\n\
                   fn c() { z.unwrap(); }\n";
        let raw: Vec<&str> = src.lines().collect();
        let code = strip_file(&raw);
        let mask = test_block_mask(&code);
        assert_eq!(mask, [false, true, true, true, true, false]);
    }
}
