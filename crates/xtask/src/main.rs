//! Repo automation tasks. The only task today is `lint`:
//!
//! ```text
//! cargo run -p xtask -- lint [--stale-only] [--json PATH | --no-json] [--baseline PATH]
//! ```
//!
//! A thin CLI over `delprop-analyzer` (DESIGN.md §16): one shared
//! token-stream lex per file, eleven rules — the eight legacy
//! concurrency-hygiene invariants this binary used to enforce with a
//! line scanner, plus the ordering-justification, budget-coverage, and
//! panic-path audits — a committed `analyzer.baseline` burn-down file
//! with stale-suppression checking, and a machine-readable report at
//! `artifacts/ANALYZE.json`.
//!
//! Exit codes: `0` clean; `1` active findings or stale baseline
//! entries; `2` scan errors (unreadable file, malformed baseline,
//! unknown flag).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use delprop_analyzer::{run, Options, Outcome};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprintln!("usage: cargo run -p xtask -- lint [--stale-only] [--json PATH | --no-json] [--baseline PATH]");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint    enforce the repo invariants (analyzer-backed; see DESIGN.md §16)");
            eprintln!();
            eprintln!("lint flags:");
            eprintln!("  --stale-only      only fail on stale analyzer.baseline entries");
            eprintln!(
                "  --json PATH       write the JSON report there (default artifacts/ANALYZE.json)"
            );
            eprintln!("  --no-json         skip writing the JSON report");
            eprintln!(
                "  --baseline PATH   read suppressions from PATH (default analyzer.baseline)"
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `lint`)");
            ExitCode::from(2)
        }
    }
}

fn run_lint(flags: &[String]) -> ExitCode {
    let mut opts = Options::default();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--stale-only" => opts.stale_only = true,
            "--no-json" => opts.json_out = Some(PathBuf::new()),
            "--json" => match it.next() {
                Some(p) => opts.json_out = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a path"),
            },
            "--baseline" => match it.next() {
                Some(p) => opts.baseline = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a path"),
            },
            other => return usage_error(&format!("unknown lint flag `{other}`")),
        }
    }
    match run(&repo_root(), &opts) {
        Outcome::Clean => ExitCode::SUCCESS,
        Outcome::Dirty => ExitCode::FAILURE,
        Outcome::Error => ExitCode::from(2),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("xtask lint: {msg}");
    ExitCode::from(2)
}

/// `crates/xtask` -> repository root.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels under the repo root")
        .to_path_buf()
}
