//! Dense two-phase primal simplex with Bland's rule.
//!
//! Built from scratch because no LP solver exists in the offline crate set.
//! The instances this library solves (the LP relaxation (1)–(5) of §IV.C,
//! used for lower bounds and LP rounding) have at most a few thousand
//! nonzeros, where a dense tableau is simple and fast enough. Bland's rule
//! guarantees termination (no cycling) at the cost of some extra pivots —
//! the right trade for a correctness-critical baseline.
//!
//! The tableau is one flat row-major `f64` buffer ([`Tableau`]), and
//! pricing computes every column's reduced cost in a single row-ordered
//! sweep (`reduced[j] = cost[j] - Σ_i cost[basis[i]]·a[i][j]`, accumulated
//! row by row) instead of walking each column through strided memory. The
//! accumulation order per column is unchanged, so reduced costs — and
//! therefore every pivot choice and the final vertex — are bit-identical
//! to the column-walk formulation.

use crate::model::{Cmp, LpOutcome, LpProblem, Sense};

const EPS: f64 = 1e-9;

/// Flat row-major simplex tableau: row `i` is the contiguous slice
/// `a[i*w .. (i+1)*w]`.
struct Tableau {
    a: Vec<f64>,
    /// Row width (number of columns).
    w: usize,
}

impl Tableau {
    fn new(rows: usize, cols: usize) -> Self {
        Tableau {
            a: vec![0.0; rows * cols],
            w: cols,
        }
    }

    fn rows(&self) -> usize {
        self.a.len().checked_div(self.w).unwrap_or(0)
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.a[i * self.w..(i + 1) * self.w]
    }

    fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.a[i * self.w..(i + 1) * self.w]
    }

    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.w + j]
    }

    fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.w + j] = v;
    }
}

/// Solve `problem` to optimality (or detect infeasibility/unboundedness).
pub fn solve(problem: &LpProblem) -> LpOutcome {
    solve_with_ticker(problem, &mut |_| true)
}

/// Like [`solve`], but calls `tick(1)` once per simplex pivot iteration
/// (a cooperative work-budget checkpoint). When `tick` returns `false`
/// the solve stops and reports [`LpOutcome::IterationLimit`], exactly as
/// if the internal anti-cycling cap had fired.
// lint:allow(budget): tableau assembly is one O(m*n) pass; the pivot loop in run_simplex ticks per iteration
pub fn solve_with_ticker(problem: &LpProblem, tick: &mut dyn FnMut(u64) -> bool) -> LpOutcome {
    let n = problem.num_vars();
    let m = problem.constraints().len();

    // --- Build the standard form: min c·x, Ax = b, x ≥ 0, b ≥ 0. ---
    // Column layout: [structural 0..n | slack/surplus | artificial]. A
    // pre-pass sizes both extra column groups exactly (a slack starts
    // basic iff its coefficient is +1 after the b ≥ 0 normalization, i.e.
    // `Le` with non-negative rhs or `Ge` with negative rhs; every other
    // row needs an artificial), so the flat tableau is allocated at its
    // final width — no truncation pass.
    let mut num_slack = 0;
    let mut num_art = 0;
    for con in problem.constraints() {
        let negated = con.rhs < 0.0;
        match con.cmp {
            Cmp::Le | Cmp::Ge => num_slack += 1,
            Cmp::Eq => {}
        }
        let slack_basic = matches!(con.cmp, Cmp::Le) != negated && !matches!(con.cmp, Cmp::Eq);
        if !slack_basic {
            num_art += 1;
        }
    }
    let num_cols = n + num_slack + num_art;
    let mut a = Tableau::new(m, num_cols);
    let mut b = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_col = n;
    let mut art_col = n + num_slack;

    for (i, con) in problem.constraints().iter().enumerate() {
        for &(v, coeff) in &con.terms {
            a.set(i, v, a.at(i, v) + coeff);
        }
        b[i] = con.rhs;
        let mut slack_sign = 0.0;
        match con.cmp {
            Cmp::Le => slack_sign = 1.0,
            Cmp::Ge => slack_sign = -1.0,
            Cmp::Eq => {}
        }
        let this_slack = if slack_sign != 0.0 {
            a.set(i, slack_col, slack_sign);
            let col = slack_col;
            slack_col += 1;
            Some(col)
        } else {
            None
        };
        // Normalize to b ≥ 0.
        if b[i] < 0.0 {
            for x in a.row_mut(i) {
                *x = -*x;
            }
            b[i] = -b[i];
        }
        // A slack column with coefficient +1 can start in the basis.
        match this_slack {
            Some(col) if a.at(i, col) > 0.5 => basis[i] = col,
            _ => {
                a.set(i, art_col, 1.0);
                basis[i] = art_col;
                art_col += 1;
            }
        }
    }
    debug_assert_eq!(art_col, num_cols, "artificial pre-count must be exact");

    // Objective in minimization form.
    let sign = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; num_cols];
    for (v, &c) in problem.objective().iter().enumerate() {
        cost[v] = sign * c;
    }

    // --- Phase 1: minimize sum of artificials. ---
    if num_art > 0 {
        let mut phase1 = vec![0.0; num_cols];
        for p in phase1.iter_mut().skip(n + num_slack) {
            *p = 1.0;
        }
        match run_simplex(&mut a, &mut b, &mut basis, &phase1, num_cols, tick) {
            SimplexEnd::Optimal(obj) => {
                if obj > 1e-7 {
                    return LpOutcome::Infeasible;
                }
            }
            SimplexEnd::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
            SimplexEnd::IterationLimit => return LpOutcome::IterationLimit,
        }
        // Drive any remaining artificial out of the basis (degenerate rows).
        for i in 0..m {
            if basis[i] >= n + num_slack {
                // Pivot on any non-artificial column with nonzero entry.
                if let Some(j) = (0..n + num_slack).find(|&j| a.at(i, j).abs() > EPS) {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                }
                // If none exists the row is all-zero (redundant); the
                // artificial stays basic at value 0, which is harmless.
            }
        }
        // Freeze artificials at zero for phase 2 by zeroing their columns.
        for i in 0..m {
            for x in a.row_mut(i).iter_mut().skip(n + num_slack) {
                *x = 0.0;
            }
        }
    }

    // --- Phase 2: the real objective. ---
    match run_simplex(&mut a, &mut b, &mut basis, &cost, n + num_slack, tick) {
        SimplexEnd::Unbounded => LpOutcome::Unbounded,
        SimplexEnd::IterationLimit => LpOutcome::IterationLimit,
        SimplexEnd::Optimal(obj) => {
            let mut x = vec![0.0; n];
            for (i, &bv) in basis.iter().enumerate() {
                if bv < n {
                    x[bv] = b[i];
                }
            }
            LpOutcome::Optimal {
                x,
                objective: sign * obj,
            }
        }
    }
}

enum SimplexEnd {
    Optimal(f64),
    Unbounded,
    /// The iteration cap fired (pathological degeneracy). Callers treat
    /// this as "no usable answer" rather than waiting minutes.
    IterationLimit,
}

/// Run primal simplex on the tableau, restricted to entering columns
/// `< enter_limit`. Pricing is Dantzig (most negative reduced cost) for
/// speed, switching to Bland's rule after a generous iteration budget so
/// termination stays guaranteed on degenerate instances. Returns the
/// optimal objective value `Σ cost[basis[i]]·b[i]` on success.
// lint:allow(budget): per-iteration scans are bounded by the tableau; the enclosing pivot loop ticks once per iteration
fn run_simplex(
    a: &mut Tableau,
    b: &mut [f64],
    basis: &mut [usize],
    cost: &[f64],
    enter_limit: usize,
    tick: &mut dyn FnMut(u64) -> bool,
) -> SimplexEnd {
    let m = a.rows();
    // Three pricing phases: Dantzig (fast), then randomized (breaks the
    // degenerate treadmills Dantzig can enter), then Bland (guaranteed
    // progress), with a hard cap as the final backstop.
    let dantzig_until = 5 * (m + enter_limit) as u64 + 500;
    let random_until = dantzig_until + 20 * (m + enter_limit) as u64 + 2_000;
    let max_iterations = random_until + 50 * (m + enter_limit) as u64 + 10_000;
    let mut rng_state: u64 = 0x9e3779b97f4a7c15;
    let mut iterations: u64 = 0;
    let mut in_basis =
        vec![false; enter_limit.max(basis.iter().copied().max().map_or(0, |x| x + 1))];
    for &bv in basis.iter() {
        if bv < in_basis.len() {
            in_basis[bv] = true;
        }
    }
    loop {
        iterations += 1;
        if iterations > max_iterations || !tick(1) {
            return SimplexEnd::IterationLimit;
        }
        let bland = iterations > random_until;
        let randomized = !bland && iterations > dantzig_until;
        // Reduced costs of every candidate column in one row-ordered
        // sweep: start from cost[..enter_limit] and subtract each basic
        // row's contribution across all columns at once (the tableau is
        // kept in canonical form). Per column this accumulates in the
        // same ascending-row order as a column walk — identical floats —
        // but streams the flat buffer instead of striding it.
        let mut reduced_costs = cost[..enter_limit].to_vec();
        for (i, &bv) in basis.iter().enumerate() {
            let c = cost[bv];
            if c != 0.0 {
                for (rj, &aij) in reduced_costs.iter_mut().zip(a.row(i)) {
                    *rj -= c * aij;
                }
            }
        }
        let mut entering: Option<(usize, f64)> = None;
        let mut improving_seen: u64 = 0;
        for (j, &reduced) in reduced_costs.iter().enumerate() {
            if j < in_basis.len() && in_basis[j] {
                continue;
            }
            if reduced < -EPS {
                if bland {
                    entering = Some((j, reduced)); // first index
                    break;
                }
                if randomized {
                    // Reservoir-sample uniformly among improving columns
                    // (breaks the degenerate treadmills Dantzig enters).
                    improving_seen += 1;
                    rng_state ^= rng_state << 13;
                    rng_state ^= rng_state >> 7;
                    rng_state ^= rng_state << 17;
                    if rng_state.is_multiple_of(improving_seen) {
                        entering = Some((j, reduced));
                    }
                } else if entering.is_none_or(|(_, r)| reduced < r) {
                    entering = Some((j, reduced)); // most negative
                }
            }
        }
        let Some((j, _)) = entering else {
            let obj = (0..m).map(|i| cost[basis[i]] * b[i]).sum();
            return SimplexEnd::Optimal(obj);
        };
        // Ratio test (Bland ties: smallest basis variable index).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if a.at(i, j) > EPS {
                let ratio = b[i] / a.at(i, j);
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((i, _)) = leave else {
            return SimplexEnd::Unbounded;
        };
        let old = basis[i];
        if old < in_basis.len() {
            in_basis[old] = false;
        }
        pivot(a, b, basis, i, j);
        if j < in_basis.len() {
            in_basis[j] = true;
        }
    }
}

/// Pivot the tableau: make column `j` basic in row `i`.
// lint:allow(budget): one pivot is a single O(m*n) tableau sweep, ticked by run_simplex per iteration
fn pivot(a: &mut Tableau, b: &mut [f64], basis: &mut [usize], i: usize, j: usize) {
    let p = a.at(i, j);
    debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
    for x in a.row_mut(i) {
        *x /= p;
    }
    b[i] /= p;
    let bi = b[i];
    // Eliminate column j from every other row — the hot loop of the whole
    // solver. The flat buffer splits around the pivot row, so both halves
    // stream against it with no clone.
    let w = a.w;
    let (head, rest) = a.a.split_at_mut(i * w);
    let (pivot_row, tail) = rest.split_at_mut(w);
    let eliminate = |row: &mut [f64], b_r: &mut f64| {
        let factor = row[j];
        if factor.abs() > EPS {
            for (x, pv) in row.iter_mut().zip(&*pivot_row) {
                *x -= factor * pv;
            }
            *b_r -= factor * bi;
        }
    };
    for (r, row) in head.chunks_exact_mut(w).enumerate() {
        eliminate(row, &mut b[r]);
    }
    for (k, row) in tail.chunks_exact_mut(w).enumerate() {
        eliminate(row, &mut b[i + 1 + k]);
    }
    basis[i] = j;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LpProblem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12
        let mut p = LpProblem::new(2, Sense::Maximize);
        p.set_objective(0, 3.0);
        p.set_objective(1, 2.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(0, 1.0), (1, 3.0)], Cmp::Le, 6.0);
        let o = solve(&p);
        assert_close(o.objective().unwrap(), 12.0);
        let x = o.solution().unwrap();
        assert_close(x[0], 4.0);
        assert_close(x[1], 0.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min x + 2y s.t. x + y >= 3, y >= 1 -> x=2, y=1, obj 4
        let mut p = LpProblem::new(2, Sense::Minimize);
        p.set_objective(0, 1.0);
        p.set_objective(1, 2.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Ge, 3.0);
        p.add_constraint(vec![(1, 1.0)], Cmp::Ge, 1.0);
        let o = solve(&p);
        assert_close(o.objective().unwrap(), 4.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x=2, y=1, obj 3
        let mut p = LpProblem::new(2, Sense::Minimize);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 2.0)], Cmp::Eq, 4.0);
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], Cmp::Eq, 1.0);
        let o = solve(&p);
        assert_close(o.objective().unwrap(), 3.0);
        let x = o.solution().unwrap();
        assert_close(x[0], 2.0);
        assert_close(x[1], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let mut p = LpProblem::new(1, Sense::Minimize);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(vec![(0, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x s.t. x >= 0 (no upper bound)
        let mut p = LpProblem::new(1, Sense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0)], Cmp::Ge, 0.0);
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -2  (i.e. x >= 2)
        let mut p = LpProblem::new(1, Sense::Minimize);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, -1.0)], Cmp::Le, -2.0);
        assert_close(solve(&p).objective().unwrap(), 2.0);
    }

    #[test]
    fn degenerate_vertex_terminates() {
        // Classic degenerate LP; Bland's rule must not cycle.
        let mut p = LpProblem::new(4, Sense::Minimize);
        for (i, c) in [-0.75, 150.0, -0.02, 6.0].iter().enumerate() {
            p.set_objective(i, *c);
        }
        p.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(vec![(2, 1.0)], Cmp::Le, 1.0);
        let o = solve(&p);
        assert_close(o.objective().unwrap(), -0.05);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // x + x <= 4 means 2x <= 4.
        let mut p = LpProblem::new(1, Sense::Maximize);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0), (0, 1.0)], Cmp::Le, 4.0);
        assert_close(solve(&p).objective().unwrap(), 2.0);
    }

    #[test]
    fn fractional_vertex_lp() {
        // The LP relaxation of vertex cover on a triangle: min Σx,
        // x_i + x_j >= 1 for the 3 edges -> all 0.5, objective 1.5.
        let mut p = LpProblem::new(3, Sense::Minimize);
        for v in 0..3 {
            p.set_objective(v, 1.0);
        }
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Ge, 1.0);
        p.add_constraint(vec![(1, 1.0), (2, 1.0)], Cmp::Ge, 1.0);
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], Cmp::Ge, 1.0);
        let o = solve(&p);
        assert_close(o.objective().unwrap(), 1.5);
        for &v in o.solution().unwrap() {
            assert_close(v, 0.5);
        }
    }

    #[test]
    fn redundant_equality_rows_handled() {
        // x + y = 2 stated twice: phase 1 leaves a zero row with a basic
        // artificial at 0, which must not break phase 2.
        let mut p = LpProblem::new(2, Sense::Minimize);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        let o = solve(&p);
        assert_close(o.objective().unwrap(), 0.0); // x=0, y=2
    }
}
