//! # delprop-lp — linear-programming substrate
//!
//! A small dense two-phase primal simplex solver, written from scratch
//! because the offline crate set contains no LP solver. It exists for two
//! jobs in this workspace:
//!
//! 1. solving the paper's LP relaxation (formulation (1)–(5), §IV.C) to
//!    optimality, giving the **lower bounds** every approximation-ratio
//!    experiment divides by, and
//! 2. powering the deterministic LP-rounding `l`-approximation in
//!    `delprop-core`.
//!
//! Bland's rule is used throughout: slower than Dantzig pricing, but
//! provably terminating, which matters for a correctness baseline.

mod model;
mod simplex;

pub use model::{Cmp, Constraint, LpOutcome, LpProblem, Sense};
pub use simplex::{solve, solve_with_ticker};
