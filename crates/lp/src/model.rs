//! Linear-program model: variables, linear constraints, objective.
//!
//! All variables are non-negative (`x ≥ 0`), which is all the paper's LP
//! relaxation (formulation (1)–(5) in §IV.C) needs; bounded variables are
//! expressed as explicit constraints.

use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

/// One linear constraint `Σ coeff·x (op) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients `(variable, coefficient)`.
    pub terms: Vec<(usize, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone)]
pub struct LpProblem {
    num_vars: usize,
    sense: Sense,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// New program with `num_vars` non-negative variables, objective 0.
    pub fn new(num_vars: usize, sense: Sense) -> Self {
        LpProblem {
            num_vars,
            sense,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Set the objective coefficient of variable `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range or `c` is non-finite.
    pub fn set_objective(&mut self, v: usize, c: f64) {
        assert!(v < self.num_vars, "variable {v} out of range");
        assert!(c.is_finite(), "objective coefficient must be finite");
        self.objective[v] = c;
    }

    /// Add a constraint.
    ///
    /// # Panics
    /// Panics on out-of-range variables or non-finite numbers.
    // lint:allow(budget): O(terms) normalization of one constraint at build time
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        for &(v, c) in &terms {
            assert!(v < self.num_vars, "variable {v} out of range");
            assert!(c.is_finite(), "coefficient must be finite");
        }
        self.constraints.push(Constraint { terms, cmp, rhs });
    }
}

impl fmt::Display for LpProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {:?} over {} vars, {} constraints",
            match self.sense {
                Sense::Minimize => "min",
                Sense::Maximize => "max",
            },
            self.objective,
            self.num_vars,
            self.constraints.len()
        )
    }
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Variable values.
        x: Vec<f64>,
        /// Objective value at `x` (in the problem's own sense).
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The solver's iteration cap fired before reaching optimality
    /// (pathologically degenerate instance). No primal answer is
    /// available; callers must fall back (e.g. use a trivial bound).
    IterationLimit,
}

impl LpOutcome {
    /// The optimal objective, if any.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }

    /// The optimal point, if any.
    pub fn solution(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut p = LpProblem::new(2, Sense::Minimize);
        p.set_objective(0, 1.0);
        p.set_objective(1, 2.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.constraints().len(), 1);
        assert_eq!(p.objective(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn objective_bounds_checked() {
        LpProblem::new(1, Sense::Minimize).set_objective(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        LpProblem::new(1, Sense::Minimize).add_constraint(vec![(0, 1.0)], Cmp::Le, f64::NAN);
    }

    #[test]
    fn outcome_accessors() {
        let o = LpOutcome::Optimal {
            x: vec![1.0],
            objective: 3.0,
        };
        assert_eq!(o.objective(), Some(3.0));
        assert_eq!(o.solution(), Some(&[1.0][..]));
        assert_eq!(LpOutcome::Infeasible.objective(), None);
    }
}
