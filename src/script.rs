//! A small text format for whole deletion-propagation scenarios, and its
//! loader — the input format of the `delprop` CLI.
//!
//! ```text
//! % comments start with '%' or '#'
//! relation T1(AuName, Journal) key(0, 1)
//! relation T2(Journal, Topic, Papers) key(0, 1)
//!
//! fact T1('John', 'TKDE')
//! fact T2('TKDE', 'XML', 30)
//!
//! fd T2 (1) -> (0, 2)          % optional: positions, 0-based
//!
//! query Q4(x, y, z) :- T1(x, y), T2(y, z, w)
//!
//! delete Q4('John', 'TKDE', 'XML')
//! weight Q4('Joe', 'TKDE', 'XML') 2.5
//!
//! objective standard            % or: balanced
//! solver auto                   % auto|exact|general|greedy|primal-dual|
//!                               % lowdeg-tree|dp-tree|lp-round|source
//! ```
//!
//! Directives may appear in any order except that `relation` must precede
//! the facts/queries that use it (the natural reading order).

use crate::core::{CoreError, Problem};
use crate::query::{parse_atom, parse_query, QueryError, Term};
use crate::relation::{
    Database, FunctionalDependency, RelationFds, RelationSchema, Schema, SchemaFds, Tuple, Value,
};
use std::fmt;

/// Requested objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectiveSpec {
    /// Minimize view side-effect, eliminating all of `ΔV`.
    #[default]
    Standard,
    /// Minimize missed deletions + side-effect.
    Balanced,
}

/// Requested solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverSpec {
    /// Let the classifier choose (the default).
    #[default]
    Auto,
    /// Exact branch and bound.
    Exact,
    /// Claim 1 / Lemma 1 general approximation.
    General,
    /// Greedy baseline.
    Greedy,
    /// Algorithm 1, `PrimeDualVSE`.
    PrimalDual,
    /// Algorithms 2–3, `LowDegTreeVSETwo`.
    LowDegTree,
    /// Algorithm 4, `DPTreeVSE`.
    DpTree,
    /// LP rounding.
    LpRound,
    /// Source side-effect (minimum #deleted base tuples).
    Source,
}

impl SolverSpec {
    /// Parse a solver name as written in scripts / on the CLI.
    pub fn parse(s: &str) -> Option<SolverSpec> {
        Some(match s {
            "auto" => SolverSpec::Auto,
            "exact" => SolverSpec::Exact,
            "general" => SolverSpec::General,
            "greedy" => SolverSpec::Greedy,
            "primal-dual" => SolverSpec::PrimalDual,
            "lowdeg-tree" => SolverSpec::LowDegTree,
            "dp-tree" => SolverSpec::DpTree,
            "lp-round" => SolverSpec::LpRound,
            "source" => SolverSpec::Source,
            _ => return None,
        })
    }
}

/// A parsed scenario, ready to turn into a [`Problem`].
#[derive(Debug)]
pub struct Script {
    /// The database instance built from `relation` + `fact` directives.
    pub db: Database,
    /// Query sources in declaration order.
    pub queries: Vec<crate::query::ConjunctiveQuery>,
    /// Declared functional dependencies.
    pub fds: SchemaFds,
    /// `delete` directives as (query name, head tuple).
    pub deletions: Vec<(String, Tuple)>,
    /// `weight` directives as (query name, head tuple, weight).
    pub weights: Vec<(String, Tuple, f64)>,
    /// Requested objective.
    pub objective: ObjectiveSpec,
    /// Requested solver.
    pub solver: SolverSpec,
}

/// Script parsing / assembly errors with a line number.
#[derive(Debug)]
pub struct ScriptError {
    /// 1-based line of the offending directive (0 for assembly errors).
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.reason)
        } else {
            write!(f, "{}", self.reason)
        }
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, reason: impl fmt::Display) -> ScriptError {
    ScriptError {
        line,
        reason: reason.to_string(),
    }
}

/// Parse a scenario script.
pub fn parse_script(text: &str) -> Result<Script, ScriptError> {
    let mut schema = Schema::new();
    let mut pending_facts: Vec<(usize, String)> = Vec::new();
    let mut queries = Vec::new();
    let mut fd_lines: Vec<(usize, String)> = Vec::new();
    let mut deletions = Vec::new();
    let mut weights = Vec::new();
    let mut objective = ObjectiveSpec::default();
    let mut solver = SolverSpec::default();

    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "relation" => {
                let decl = parse_relation_decl(rest).map_err(|e| err(line_no, e))?;
                schema.add(decl).map_err(|e| err(line_no, e))?;
            }
            "fact" => pending_facts.push((line_no, rest.to_string())),
            "query" => {
                let q = parse_query(rest).map_err(|e| err(line_no, e))?;
                queries.push(q);
            }
            "fd" => fd_lines.push((line_no, rest.to_string())),
            "delete" => {
                let (name, tuple) = parse_ground_atom(rest).map_err(|e| err(line_no, e))?;
                deletions.push((name, tuple));
            }
            "weight" => {
                let (head, w) = rest
                    .rsplit_once(char::is_whitespace)
                    .ok_or_else(|| err(line_no, "weight needs an atom and a number"))?;
                let w: f64 = w
                    .parse()
                    .map_err(|_| err(line_no, format!("bad weight {w:?}")))?;
                let (name, tuple) = parse_ground_atom(head.trim()).map_err(|e| err(line_no, e))?;
                weights.push((name, tuple, w));
            }
            "objective" => {
                objective = match rest {
                    "standard" => ObjectiveSpec::Standard,
                    "balanced" => ObjectiveSpec::Balanced,
                    other => return Err(err(line_no, format!("unknown objective {other:?}"))),
                };
            }
            "solver" => {
                solver = SolverSpec::parse(rest)
                    .ok_or_else(|| err(line_no, format!("unknown solver {rest:?}")))?;
            }
            other => return Err(err(line_no, format!("unknown directive {other:?}"))),
        }
    }

    // Assemble: facts then FDs need the final schema.
    let mut db = Database::new(schema);
    for (line_no, src) in pending_facts {
        let (name, tuple) = parse_ground_atom(&src).map_err(|e| err(line_no, e))?;
        db.insert(&name, tuple).map_err(|e| err(line_no, e))?;
    }
    let mut fds = SchemaFds::new();
    for (line_no, src) in fd_lines {
        let (rid, fd) = parse_fd(&src, db.schema()).map_err(|e| err(line_no, e))?;
        let arity = db.schema().relation(rid).arity();
        // Accumulate into any existing declaration for the relation.
        let mut rel_fds = fds
            .get(rid)
            .cloned()
            .unwrap_or_else(|| RelationFds::new(arity));
        rel_fds.add(fd).map_err(|e| err(line_no, e))?;
        fds.insert(rid, rel_fds);
    }
    Ok(Script {
        db,
        queries,
        fds,
        deletions,
        weights,
        objective,
        solver,
    })
}

/// `T1(AuName, Journal) key(0, 1)` — attribute names are display-only.
fn parse_relation_decl(src: &str) -> Result<RelationSchema, String> {
    let (atom_part, key_part) = src
        .split_once("key")
        .ok_or("relation declaration needs a key(...) clause")?;
    let atom = parse_atom(atom_part.trim()).map_err(|e| e.to_string())?;
    let names: Vec<String> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => Ok(v.clone()),
            Term::Const(c) => Ok(c.to_string()),
        })
        .collect::<Result<_, String>>()?;
    let key_positions = parse_usize_list(key_part.trim())?;
    let decl = RelationSchema::new(atom.relation, atom.terms.len(), key_positions)
        .map_err(|e| e.to_string())?;
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Ok(decl.with_attr_names(&name_refs))
}

/// `T2 (1) -> (0, 2)`
fn parse_fd(
    src: &str,
    schema: &Schema,
) -> Result<(crate::relation::RelationId, FunctionalDependency), String> {
    let (rel, rest) = src
        .split_once(char::is_whitespace)
        .ok_or("fd needs: <relation> (lhs) -> (rhs)")?;
    let rid = schema.relation_id(rel.trim()).map_err(|e| e.to_string())?;
    let (lhs, rhs) = rest.split_once("->").ok_or("fd needs '->'")?;
    Ok((
        rid,
        FunctionalDependency::new(parse_usize_list(lhs.trim())?, parse_usize_list(rhs.trim())?),
    ))
}

/// `(0, 2)` or `(1)`.
fn parse_usize_list(src: &str) -> Result<Vec<usize>, String> {
    let inner = src
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("expected parenthesized list, got {src:?}"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| format!("bad position {s:?}"))
        })
        .collect()
}

/// A ground atom: relation/query name + constant tuple.
fn parse_ground_atom(src: &str) -> Result<(String, Tuple), QueryError> {
    let atom = parse_atom(src)?;
    let values: Result<Vec<Value>, QueryError> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Ok(c.clone()),
            Term::Var(v) => Err(QueryError::Parse {
                input: src.to_string(),
                reason: format!("expected a ground atom, found variable {v}"),
            }),
        })
        .collect();
    Ok((atom.relation, Tuple::new(values?)))
}

impl Script {
    /// Build the [`Problem`] (marking deletions, applying weights). Uses
    /// the FD-aware constructor iff any FDs were declared.
    pub fn into_problem(self) -> Result<(Problem, ObjectiveSpec, SolverSpec), ScriptError> {
        let bound = self
            .queries
            .iter()
            .map(|q| q.bind(self.db.schema()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| err(0, e))?;
        let has_fds = bound
            .iter()
            .any(|q| q.atoms.iter().any(|a| self.fds.get(a.relation).is_some()));
        let mut problem = if has_fds {
            Problem::new_with_fds(self.db, bound, &self.fds).map_err(|e| err(0, e))?
        } else {
            Problem::new(self.db, bound).map_err(|e| err(0, e))?
        };
        let view_of = |problem: &Problem, name: &str| -> Result<usize, ScriptError> {
            problem
                .queries()
                .iter()
                .position(|q| q.name == name)
                .ok_or_else(|| err(0, format!("no query named {name}")))
        };
        for (name, head) in &self.deletions {
            let vi = view_of(&problem, name)?;
            problem.mark_deleted(vi, head).map_err(|e| err(0, e))?;
        }
        for (name, head, w) in &self.weights {
            let vi = view_of(&problem, name)?;
            let idx = problem.views().views[vi]
                .position_of(head)
                .ok_or_else(|| err(0, format!("no view tuple {head} in {name}")))?;
            problem
                .set_weight(crate::query::ViewTupleId::new(vi, idx), *w)
                .map_err(|e| err(0, e))?;
        }
        Ok((problem, self.objective, self.solver))
    }
}

/// Run the requested solver on a problem.
pub fn run_solver(
    problem: &Problem,
    objective: ObjectiveSpec,
    solver: SolverSpec,
) -> Result<crate::core::Solution, CoreError> {
    use crate::core::solvers::*;
    use delprop_setcover::exact::ExactConfig;
    let ir = problem.compiled();
    match (objective, solver) {
        (ObjectiveSpec::Standard, SolverSpec::Auto) => crate::core::solve_auto(problem),
        (ObjectiveSpec::Standard, SolverSpec::Exact) => exact::solve(ir, ExactConfig::default())
            .solution
            .ok_or(CoreError::Infeasible {
                reason: "no feasible deletion".into(),
            }),
        (ObjectiveSpec::Standard, SolverSpec::General) => general::solve(ir),
        (ObjectiveSpec::Standard, SolverSpec::Greedy) => general::solve_greedy(ir),
        (ObjectiveSpec::Standard, SolverSpec::PrimalDual) => primal_dual::solve_default(ir),
        (ObjectiveSpec::Standard, SolverSpec::LowDegTree) => lowdeg_tree::solve(ir),
        (ObjectiveSpec::Standard, SolverSpec::DpTree) => dp_tree::solve(ir),
        (ObjectiveSpec::Standard, SolverSpec::LpRound) => lp_round::solve(ir),
        (ObjectiveSpec::Standard, SolverSpec::Source) => Ok(source::solve(ir)),
        (ObjectiveSpec::Balanced, SolverSpec::DpTree) => dp_tree::solve_balanced(ir),
        (ObjectiveSpec::Balanced, SolverSpec::Exact) => {
            Ok(exact::solve_balanced(ir, ExactConfig::default())
                .solution
                .expect("balanced is always feasible"))
        }
        (ObjectiveSpec::Balanced, SolverSpec::Auto) => crate::core::solve_auto_balanced(problem),
        (ObjectiveSpec::Balanced, SolverSpec::General) => Ok(general::solve_balanced(ir)),
        (ObjectiveSpec::Balanced, SolverSpec::PrimalDual) => {
            primal_dual_balanced::solve_balanced(ir, &Default::default()).map(|o| o.solution)
        }
        (ObjectiveSpec::Balanced, other) => Err(CoreError::StructureMismatch {
            solver: "script",
            reason: format!("solver {other:?} does not support the balanced objective"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    const FIG1: &str = r#"
% Fig. 1 of the paper
relation T1(AuName, Journal) key(0, 1)
relation T2(Journal, Topic, Papers) key(0, 1)

fact T1('Joe', 'TKDE')
fact T1('John', 'TKDE')
fact T1('Tom', 'TKDE')
fact T1('John', 'TODS')
fact T2('TKDE', 'XML', 30)
fact T2('TKDE', 'CUBE', 30)
fact T2('TODS', 'XML', 30)

query Q4(x, y, z) :- T1(x, y), T2(y, z, w)
delete Q4('John', 'TKDE', 'XML')
weight Q4('Joe', 'TKDE', 'XML') 2.0
solver exact
"#;

    #[test]
    fn parses_and_solves_fig1() {
        let script = parse_script(FIG1).unwrap();
        assert_eq!(script.queries.len(), 1);
        assert_eq!(script.deletions.len(), 1);
        let (problem, objective, solver) = script.into_problem().unwrap();
        assert_eq!(objective, ObjectiveSpec::Standard);
        assert_eq!(solver, SolverSpec::Exact);
        assert_eq!(problem.norm_v(), 7);
        let sol = run_solver(&problem, objective, solver).unwrap();
        assert_eq!(sol.side_effect(&problem), 1.0);
    }

    #[test]
    fn weight_is_applied() {
        let script = parse_script(FIG1).unwrap();
        let (problem, _, _) = script.into_problem().unwrap();
        let idx = problem.views().views[0]
            .position_of(&tup!["Joe", "TKDE", "XML"])
            .unwrap();
        assert_eq!(problem.weight(crate::query::ViewTupleId::new(0, idx)), 2.0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "relation T(A) key(0)\nfact T('x', 'y')\n";
        let e = parse_script(bad).unwrap_err();
        assert_eq!(e.line, 2, "arity mismatch is on line 2: {e}");

        let bad = "bogus directive\n";
        assert_eq!(parse_script(bad).unwrap_err().line, 1);

        let bad = "relation T(A) key(0)\nfd T (0 -> (0)\n";
        assert!(parse_script(bad).is_err());

        let bad = "relation T(A) key(0)\ndelete T(x)\n";
        let e = parse_script(bad).unwrap_err();
        assert!(e.reason.contains("ground"), "{e}");
    }

    #[test]
    fn balanced_and_fd_directives() {
        let src = r#"
relation T1(A, J) key(0, 1)
relation T2(J, Z, W) key(0, 1)
fact T1('Joe', 'TKDE')
fact T1('John', 'TODS')
fact T2('TKDE', 'XML', 30)
fact T2('TODS', 'CUBE', 20)
fd T1 (0) -> (1)
fd T2 (1) -> (0, 2)
query Q3(x, z) :- T1(x, y), T2(y, z, w)
delete Q3('Joe', 'XML')
objective balanced
solver exact
"#;
        let script = parse_script(src).unwrap();
        let (problem, objective, solver) = script.into_problem().unwrap();
        assert_eq!(objective, ObjectiveSpec::Balanced);
        let sol = run_solver(&problem, objective, solver).unwrap();
        assert!(sol.balanced_cost(&problem) <= 1.0);
    }

    #[test]
    fn unknown_solver_and_objective_rejected() {
        assert!(parse_script("solver warp\n").is_err());
        assert!(parse_script("objective vibes\n").is_err());
    }

    #[test]
    fn source_solver_via_script() {
        let mut src = FIG1.replace("solver exact", "solver source");
        src.push_str("delete Q4('John', 'TKDE', 'CUBE')\n");
        let (problem, o, s) = parse_script(&src).unwrap().into_problem().unwrap();
        let sol = run_solver(&problem, o, s).unwrap();
        assert!(sol.is_feasible(&problem));
        assert_eq!(sol.len(), 1, "one source tuple hits both demands");
    }
}
