//! # delprop — deletion propagation for multiple key-preserving
//! conjunctive queries
//!
//! A production-quality Rust implementation of
//!
//! > Zhipeng Cai, Dongjing Miao, Yingshu Li.
//! > *Deletion Propagation for Multiple Key Preserving Conjunctive
//! > Queries: Approximations and Complexity.* ICDE 2019.
//!
//! Given a database `D`, key-preserving conjunctive queries `Q`, their
//! materialized views `V = Q(D)`, and unwanted view tuples `ΔV`, find
//! source deletions `ΔD` that eliminate all of `ΔV` while destroying as
//! little else as possible (the **view side-effect**) — or trade the two
//! off (**balanced** deletion propagation).
//!
//! ## Quickstart
//!
//! ```
//! use delprop::prelude::*;
//!
//! // Fig. 1 of the paper: authors, journals, topics.
//! let schema = Schema::from_relations([
//!     RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
//!     RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
//! ]).unwrap();
//! let mut db = Database::new(schema);
//! db.insert("T1", tup!["John", "TKDE"]).unwrap();
//! db.insert("T2", tup!["TKDE", "XML", 30]).unwrap();
//! db.insert("T2", tup!["TKDE", "CUBE", 30]).unwrap();
//!
//! let q4 = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
//!     .unwrap().bind(db.schema()).unwrap();
//! let mut problem = Problem::new(db, vec![q4]).unwrap();
//! problem.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
//!
//! // The portfolio runtime picks the right algorithm, verifies its
//! // output against ground-truth re-evaluation, and falls back through
//! // the whole suite if anything misbehaves.
//! let outcome = solve_portfolio(&problem).unwrap();
//! assert!(outcome.solution.is_feasible(&problem));
//! assert!(outcome.cost <= 1.0);
//! println!("solved by {}", outcome.winner);
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`relation`] | `delprop-relation` | values, schemas with keys, key-enforcing stores, databases |
//! | [`query`] | `delprop-query` | CQ AST/parser, query classes, evaluation, views with witness provenance |
//! | [`setcover`] | `delprop-setcover` | Red-Blue & Pos-Neg Set Cover, exact/greedy/low-degree solvers |
//! | [`hypergraph`] | `delprop-hypergraph` | GYO α-acyclicity, hypertrees, data dual graphs, pivot structure |
//! | [`lp`] | `delprop-lp` | dense two-phase simplex (LP bounds & rounding) |
//! | [`core`] | `delprop-core` | the problem, objectives, and the paper's solver suite |
//! | [`workload`] | `delprop-workload` | generators: figures, gadgets, random/forest/pivot/cleaning workloads |
//! | [`server`] | `delprop-server` | the `delpropd` serving daemon: wire protocol, admission, deadlines, degradation |

pub use delprop_core as core;
pub use delprop_hypergraph as hypergraph;
pub use delprop_lp as lp;
pub use delprop_query as query;
pub use delprop_relation as relation;
pub use delprop_server as server;
pub use delprop_setcover as setcover;
pub use delprop_workload as workload;

pub mod script;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::core::runtime::{FaultMode, FaultySolver, MemberReport, MemberStatus};
    pub use crate::core::{
        classify, solve_auto, solve_portfolio, solve_portfolio_balanced, solve_portfolio_racing,
        Budget, CoreError, Guarantee, Portfolio, PortfolioOutcome, Problem, Solution, Solver,
        SolverKind,
    };
    pub use crate::query::{
        parse_program, parse_query, ConjunctiveQuery, View, ViewSet, ViewTupleId,
    };
    pub use crate::relation::{Database, RelationSchema, Schema, Tuple, TupleId, Value};
    pub use crate::tup;
}

// Re-export the tuple literal macro at the facade root so `use delprop::tup`
// works (macro_export places it at the defining crate's root).
pub use delprop_relation::tup;
