//! The `delpropd` CLI: run the serving daemon, or talk to one.
//!
//! ```text
//! delpropd serve [--listen ADDR] [--unix PATH] [--instance forest|random|fig1]
//!                [--seed N] [--max-inflight N] [--max-per-tenant N]
//!                [--max-queued N] [--deadline-ms N] [--max-retries N]
//!                [--no-racing]
//! delpropd request <ADDR> <JSON>     # one framed request, print the response
//! delpropd health  <ADDR>            # shorthand for {"op":"health"}
//! ```
//!
//! `serve` prints the bound address on stdout (`listening <addr>`),
//! then runs until stdin reaches EOF or a line reading `quit` — no
//! signal-handling dependencies needed. `request` speaks the
//! length-prefixed JSON wire protocol and prints the JSON response.

use std::process::ExitCode;

use delprop::server::{Bind, Client, Daemon, InstanceSpec, Request, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("request") => request(&args[1..], None),
        Some("health") => request(&args[1..], Some(r#"{"op":"health"}"#)),
        Some("--help") | Some("-h") | None => {
            println!(
                "usage: delpropd serve [--listen ADDR] [--unix PATH] \
                 [--instance forest|random|fig1] [--seed N] [--max-inflight N] \
                 [--max-per-tenant N] [--max-queued N] [--deadline-ms N] \
                 [--max-retries N] [--no-racing]\n\
                 \x20      delpropd request <ADDR> <JSON>\n\
                 \x20      delpropd health <ADDR>"
            );
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown command {other:?} (try serve, request, health)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("delpropd: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_u64(args: &[String], i: usize, flag: &str) -> Result<u64, String> {
    args.get(i)
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    let mut seed = 1u64;
    let mut kind = "forest".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                let addr = args.get(i).ok_or("--listen needs an address")?;
                cfg.bind = Bind::Tcp(addr.clone());
            }
            "--unix" => {
                i += 1;
                let path = args.get(i).ok_or("--unix needs a path")?;
                #[cfg(unix)]
                {
                    cfg.bind = Bind::Unix(std::path::PathBuf::from(path));
                }
                #[cfg(not(unix))]
                return Err(format!("--unix {path}: not supported on this platform"));
            }
            "--instance" => {
                i += 1;
                kind = args.get(i).ok_or("--instance needs a kind")?.clone();
            }
            "--seed" => {
                i += 1;
                seed = parse_u64(args, i, "--seed")?;
            }
            "--max-inflight" => {
                i += 1;
                cfg.admission.max_inflight = parse_u64(args, i, "--max-inflight")? as usize;
            }
            "--max-per-tenant" => {
                i += 1;
                cfg.admission.max_per_tenant = parse_u64(args, i, "--max-per-tenant")? as usize;
            }
            "--max-queued" => {
                i += 1;
                cfg.admission.max_queued = parse_u64(args, i, "--max-queued")? as usize;
            }
            "--deadline-ms" => {
                i += 1;
                cfg.engine.default_deadline_ms = parse_u64(args, i, "--deadline-ms")?;
            }
            "--max-retries" => {
                i += 1;
                cfg.engine.max_retries = parse_u64(args, i, "--max-retries")? as u32;
            }
            "--no-racing" => cfg.engine.racing = false,
            other => return Err(format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    cfg.initial = match kind.as_str() {
        "forest" => {
            let InstanceSpec::Forest {
                levels,
                window,
                chains,
                delete_fraction,
                weighted,
                ..
            } = InstanceSpec::default()
            else {
                unreachable!("default spec is forest");
            };
            InstanceSpec::Forest {
                levels,
                window,
                chains,
                delete_fraction,
                weighted,
                seed,
            }
        }
        "random" => {
            // Defaults come from the generator; only the seed is CLI-set.
            let j = delprop_json::parse(&format!(r#"{{"kind":"random","seed":{seed}}}"#))
                .map_err(|e| e.to_string())?;
            InstanceSpec::from_json(&j)?
        }
        "fig1" => InstanceSpec::Fig1,
        other => return Err(format!("unknown instance kind {other:?}")),
    };
    cfg.initial_label = format!("{kind}-{seed}");

    let daemon = Daemon::spawn(cfg).map_err(|e| e.to_string())?;
    match daemon.tcp_addr() {
        Some(addr) => println!("listening {addr}"),
        None => println!("listening (unix socket)"),
    }
    println!(
        "epoch {} serving; EOF or `quit` on stdin stops",
        daemon.epoch()
    );

    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(e) => return Err(format!("stdin: {e}")),
        }
    }
    drop(daemon); // orderly shutdown + join
    println!("stopped");
    Ok(())
}

fn request(args: &[String], fixed_body: Option<&str>) -> Result<(), String> {
    let addr = args.first().ok_or("need a server address")?;
    let body = match fixed_body {
        Some(b) => b.to_string(),
        None => args.get(1).ok_or("need a JSON request body")?.clone(),
    };
    let parsed = delprop_json::parse(&body)?;
    let req = Request::from_json(&parsed)?;
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("{addr}: {e}"))?;
    let mut client = Client::connect_tcp(addr).map_err(|e| e.to_string())?;
    let resp = client.request(&req).map_err(|e| e.to_string())?;
    println!("{}", resp.to_json().render());
    Ok(())
}
