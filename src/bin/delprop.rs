//! The `delprop` CLI: solve a deletion-propagation scenario described in
//! the script format of [`delprop::script`].
//!
//! ```text
//! delprop <scenario.dpl> [--solver NAME] [--objective standard|balanced]
//!         [--explain]    # print the structure report and all objectives
//! ```

use delprop::core::solvers::{exact, lp_round, source};
use delprop::core::{classify, Problem, Solution};
use delprop::script::{self, ObjectiveSpec, SolverSpec};
use delprop::setcover::exact::ExactConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("delprop: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut solver_override: Option<SolverSpec> = None;
    let mut objective_override: Option<ObjectiveSpec> = None;
    let mut explain = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--solver" => {
                i += 1;
                let name = args.get(i).ok_or("--solver needs a name")?;
                solver_override = Some(
                    SolverSpec::parse(name).ok_or_else(|| format!("unknown solver {name:?}"))?,
                );
            }
            "--objective" => {
                i += 1;
                objective_override = Some(match args.get(i).map(String::as_str) {
                    Some("standard") => ObjectiveSpec::Standard,
                    Some("balanced") => ObjectiveSpec::Balanced,
                    other => return Err(format!("unknown objective {other:?}")),
                });
            }
            "--explain" => explain = true,
            "--help" | "-h" => {
                println!(
                    "usage: delprop <scenario.dpl> [--solver NAME] \
                     [--objective standard|balanced] [--explain]"
                );
                return Ok(());
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(&args[i]),
            other => return Err(format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    let path = path.ok_or("usage: delprop <scenario.dpl> [options]")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = script::parse_script(&text).map_err(|e| format!("{path}: {e}"))?;
    let (problem, objective, solver) = parsed.into_problem().map_err(|e| e.to_string())?;
    let objective = objective_override.unwrap_or(objective);
    let solver = solver_override.unwrap_or(solver);

    println!(
        "loaded {path}: |D| = {}, {} queries, ‖V‖ = {}, ‖ΔV‖ = {}, l = {}",
        problem.db().len(),
        problem.queries().len(),
        problem.norm_v(),
        problem.norm_delta(),
        problem.l()
    );
    if explain {
        let r = classify(&problem);
        println!(
            "structure: project-free = {}, sj-free = {}, forest = {}, pivot = {}",
            r.all_project_free, r.all_self_join_free, r.forest_case, r.pivot_case
        );
        println!("recommended solver: {}", r.recommendation);
    }

    let solution = script::run_solver(&problem, objective, solver).map_err(|e| e.to_string())?;
    report(&problem, &solution, objective, explain);
    Ok(())
}

fn report(problem: &Problem, solution: &Solution, objective: ObjectiveSpec, explain: bool) {
    println!("\nΔD ({} source deletions):", solution.len());
    for &t in &solution.deleted {
        let tuple = problem.db().tuple(t).expect("solution tuples exist");
        let name = problem.db().relation_schema(t.relation).name();
        println!("  {name}{tuple}");
    }
    match objective {
        ObjectiveSpec::Standard => {
            println!(
                "feasible (all of ΔV eliminated): {}",
                solution.is_feasible(problem)
            );
            println!("view side-effect: {}", solution.side_effect(problem));
        }
        ObjectiveSpec::Balanced => {
            println!("balanced cost: {}", solution.balanced_cost(problem));
            let missed = problem
                .deletions()
                .iter()
                .filter(|&&id| !solution.eliminates(problem, id))
                .count();
            println!("deletions left in place: {missed}");
        }
    }
    if explain {
        println!(
            "source side-effect (|ΔD|): {}",
            source::source_cost(solution)
        );
        println!(
            "LP lower bound: {:.3}",
            lp_round::lower_bound(problem.compiled())
        );
        let opt = exact::solve(
            problem.compiled(),
            ExactConfig {
                node_limit: Some(5_000_000),
            },
        );
        if opt.proven_optimal {
            println!("exact optimum: {}", opt.cost);
        }
    }
}
