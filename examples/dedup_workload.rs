//! Semantic de-duplication of a multi-query workload.
//!
//! Redundant views are common in practice (several analysts materialize
//! the "same" query up to variable names or a redundant atom). They
//! inflate `‖V‖` — and with it every bound of the paper
//! (`2√(l·‖V‖·log‖ΔV‖)`, `2√‖V‖`) — without changing the problem.
//! `delprop::query::containment` detects equivalence via the classical
//! Chandra–Merlin homomorphism test, letting the workload be shrunk
//! *soundly* before solving.
//!
//! Run with: `cargo run --example dedup_workload`

use delprop::core::solvers::lowdeg_tree;
use delprop::prelude::*;
use delprop::query::containment;

fn main() {
    let schema = Schema::from_relations([
        RelationSchema::new("R", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("S", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..6i64 {
        db.insert("R", tup![i, i % 3]).unwrap();
        db.insert("S", tup![i % 3, i]).unwrap();
    }

    // Four "different" queries from four analysts; two are semantically
    // identical to the first up to renaming / a redundant atom.
    let sources = [
        "Q0(x, y, z) :- R(x, y), S(y, z)",
        "Q1(a, b, c) :- R(a, b), S(b, c)", // ≡ Q0 (renamed)
        "Q2(x, y, z) :- R(x, y), S(y, z), R(x, y)", // ≡ Q0 (duplicated atom)
        "Q3(x, y) :- R(x, y)",             // genuinely different
    ];
    let queries: Vec<_> = sources
        .iter()
        .map(|s| parse_query(s).unwrap().bind(db.schema()).unwrap())
        .collect();

    let reps = containment::deduplicate(&queries);
    println!("equivalence classes (query -> representative): {reps:?}");
    assert_eq!(reps, vec![0, 0, 0, 3]);

    // Solve the full (redundant) workload and the deduplicated one.
    let keep: Vec<_> = reps
        .iter()
        .enumerate()
        .filter(|(i, r)| i == *r)
        .map(|(i, _)| queries[i].clone())
        .collect();

    let mut full = Problem::new(db.clone(), queries.clone()).unwrap();
    let mut dedup = Problem::new(db, keep).unwrap();
    // Flag the same answer everywhere it appears.
    let bad = tup![0, 0, 0];
    for vi in 0..3 {
        full.mark_deleted(vi, &bad).unwrap();
    }
    dedup.mark_deleted(0, &bad).unwrap();

    println!(
        "full workload:  ‖V‖ = {:>2}, 2√‖V‖ bound = {:.1}",
        full.norm_v(),
        lowdeg_tree::ratio_bound(full.compiled())
    );
    println!(
        "deduplicated:   ‖V‖ = {:>2}, 2√‖V‖ bound = {:.1}",
        dedup.norm_v(),
        lowdeg_tree::ratio_bound(dedup.compiled())
    );
    assert!(dedup.norm_v() < full.norm_v());

    // The optimal repair is the same set of source deletions either way
    // (equivalent views add constraints that are already implied).
    let sol_full = solve_auto(&full).unwrap();
    let sol_dedup = solve_auto(&dedup).unwrap();
    println!(
        "\noptimal ΔD agree: {} ({} deletions)",
        sol_full.deleted == sol_dedup.deleted,
        sol_dedup.len()
    );
    assert!(
        sol_dedup.is_feasible(&full),
        "dedup solution repairs the full workload too"
    );
    println!(
        "side-effect on the full workload: {} (dedup solution), {} (full solution)",
        sol_dedup.side_effect(&full),
        sol_full.side_effect(&full)
    );
}
