//! The Theorem 1 reduction, walked through and measured.
//!
//! Red-Blue Set Cover is quasi-polynomially inapproximable, and the
//! paper's Theorem 1 pushes that hardness into multi-query deletion
//! propagation through a cost-preserving gadget (Fig. 2). This example
//! (1) walks the Fig. 2 instance through the gadget, and (2) verifies on
//! random instances that the optima of the two sides coincide exactly —
//! the property the hardness transfer rests on.
//!
//! Run with: `cargo run --example hardness_gap`

use delprop::core::solvers::exact as vse_exact;
use delprop::setcover::exact::{self as rb_exact, ExactConfig};
use delprop::workload::figures::fig2_redblue;
use delprop::workload::gadget;
use delprop::workload::redblue_gen::{self, RedBlueParams};

fn main() {
    // ------------------------------------------------------------------
    // Fig. 2: C1(r1,b1), C2(r1,b2), C3(r1,b3).
    // ------------------------------------------------------------------
    let rb = fig2_redblue();
    println!("Fig. 2 Red-Blue instance:\n{rb}");
    let g = gadget::redblue_to_vse(&rb);
    println!(
        "gadget image: {} views ({} red join-paths + {} blue), ‖ΔV‖ = {}",
        g.problem.views().views.len(),
        g.red_views.len(),
        g.blue_views.len(),
        g.problem.norm_delta()
    );
    for q in g.problem.queries() {
        println!("  {}(…) with {} atoms", q.name, q.atoms.len());
    }

    let rb_opt = rb_exact::solve(&rb, ExactConfig::default()).cost;
    let vse_opt = vse_exact::solve(g.problem.compiled(), ExactConfig::default()).cost;
    println!("\nRed-Blue OPT = {rb_opt}, view-side-effect OPT = {vse_opt}");
    assert_eq!(rb_opt, vse_opt);

    // ------------------------------------------------------------------
    // Random instances: optima must transfer exactly in both directions.
    // ------------------------------------------------------------------
    println!("\nseed | ρ β |𝒞| | RB-OPT | VSE-OPT");
    for seed in 0..10u64 {
        let params = RedBlueParams {
            num_red: 6,
            num_blue: 5,
            num_sets: 8,
            ..Default::default()
        };
        let rb = redblue_gen::redblue(params, seed);
        let g = gadget::redblue_to_vse(&rb);
        let a = rb_exact::solve(&rb, ExactConfig::default()).cost;
        let b = vse_exact::solve(g.problem.compiled(), ExactConfig::default()).cost;
        println!(
            "{seed:4} | {} {} {} | {a:6.1} | {b:7.1}",
            rb.num_red(),
            rb.num_blue(),
            rb.sets().len()
        );
        assert_eq!(a, b, "Theorem 1 reduction must preserve optima");
    }
    println!(
        "\nOptima coincide on every instance: any approximation of \
         multi-query view side-effect approximates Red-Blue Set Cover \
         with the same factor — Theorem 1's inapproximability follows."
    );
}
