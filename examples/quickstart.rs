//! Quickstart: the paper's Fig. 1 example, end to end.
//!
//! Builds the author/journal database, materializes the key-preserving
//! view Q4, requests the deletion of the wrong answer (John, TKDE, XML),
//! and lets the library pick and run the right solver.
//!
//! Run with: `cargo run --example quickstart`

use delprop::core::solvers::exact;
use delprop::prelude::*;
use delprop::setcover::exact::ExactConfig;

fn main() {
    // ------------------------------------------------------------------
    // 1. Schema + data (Fig. 1 of the paper). Keys are underlined in the
    //    paper; here they are key positions on the relation schema.
    // ------------------------------------------------------------------
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1])
            .unwrap()
            .with_attr_names(&["AuName", "Journal"]),
        RelationSchema::new("T2", 3, vec![0, 1])
            .unwrap()
            .with_attr_names(&["Journal", "Topic", "#Papers"]),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for t in [
        tup!["Joe", "TKDE"],
        tup!["John", "TKDE"],
        tup!["Tom", "TKDE"],
        tup!["John", "TODS"],
    ] {
        db.insert("T1", t).unwrap();
    }
    for t in [
        tup!["TKDE", "XML", 30],
        tup!["TKDE", "CUBE", 30],
        tup!["TODS", "XML", 30],
    ] {
        db.insert("T2", t).unwrap();
    }
    println!("Source database D:\n{}", db.render());

    // ------------------------------------------------------------------
    // 2. A key-preserving conjunctive query and its materialized view.
    //    (Q3 from the paper is NOT key-preserving — the library rejects
    //    it, demonstrating the guardrail.)
    // ------------------------------------------------------------------
    let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    match Problem::new(db.clone(), vec![q3]) {
        Err(e) => println!("Q3 rejected as expected: {e}\n"),
        Ok(_) => unreachable!("Q3 must be rejected"),
    }

    let q4 = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut problem = Problem::new(db, vec![q4]).unwrap();
    println!("View Q4(D) has {} tuples:", problem.norm_v());
    for (_, vt) in problem.views().iter() {
        println!("  {}", vt.head);
    }

    // ------------------------------------------------------------------
    // 3. The deletion request: (John, TKDE, XML) is wrong.
    // ------------------------------------------------------------------
    problem
        .mark_deleted(0, &tup!["John", "TKDE", "XML"])
        .unwrap();
    println!("\nΔV = {{(John, TKDE, XML)}}");

    // ------------------------------------------------------------------
    // 4. Classify and solve.
    // ------------------------------------------------------------------
    let report = classify(&problem);
    println!(
        "classification: l = {}, forest = {}, pivot = {}\nrecommended solver: {}",
        report.l, report.forest_case, report.pivot_case, report.recommendation
    );
    // The portfolio runtime is the default entry point: it runs the
    // applicable solvers in guarantee order, verifies every candidate
    // against ground-truth re-evaluation, and contains member panics.
    let outcome = solve_portfolio(&problem).unwrap();
    println!("\nportfolio winner: {}", outcome.winner);
    let solution = outcome.solution;
    println!("ΔD (source deletions):");
    for &t in &solution.deleted {
        println!(
            "  {t} = {}",
            problem.db().tuple(t).expect("deleted tuples exist")
        );
    }
    println!("view side-effect = {}", solution.side_effect(&problem));

    // Cross-check against the exact optimum and full re-evaluation.
    let opt = exact::solve(problem.compiled(), ExactConfig::default());
    assert_eq!(solution.side_effect(&problem), opt.cost);
    let reevaluated = solution.verify_by_reevaluation(&problem);
    assert_eq!(reevaluated, solution.side_effect(&problem));
    println!(
        "matches the exact optimum ({}) and full re-evaluation: the paper's \
         minimum view side-effect of 1.",
        opt.cost
    );
}
