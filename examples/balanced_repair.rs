//! Balanced deletion propagation (§III, §V of the paper).
//!
//! When view feedback is noisy (crowdsourced flags, heuristic detectors),
//! insisting on removing *every* flagged tuple can be ruinous: one
//! mis-flagged answer whose witnesses support dozens of good answers
//! forces massive collateral damage. The balanced objective prices missed
//! flags instead of forbidding them.
//!
//! This example builds exactly that situation on a pivot "broom"
//! workload, then solves the standard and balanced versions with the
//! exact dynamic program (`DPTreeVSE` handles both, §IV.E) and compares.
//!
//! Run with: `cargo run --example balanced_repair`

use delprop::core::solvers::{dp_tree, exact};
use delprop::prelude::*;
use delprop::setcover::exact::ExactConfig;
use delprop::workload::forest;

fn main() {
    // A broom with 6 branches of depth 2; the deepest views are
    // duplicated, so every cut has a real price. Flag three deep answers.
    let mut problem = forest::pivot_broom(6, 2, &[0, 1, 2]);

    // Two of the three flags are confident (weight 5); one is a dubious
    // crowd flag (weight 0.2). Meanwhile the dubious flag's twin is a
    // curated answer of weight 10 — destroying it would hurt.
    let flagged: Vec<ViewTupleId> = problem.deletions().iter().copied().collect();
    problem.set_weight(flagged[0], 5.0).unwrap();
    problem.set_weight(flagged[1], 5.0).unwrap();
    problem.set_weight(flagged[2], 0.2).unwrap();
    // The dubious flag lives in view `P2` (index 2); its duplicate in
    // `Pdup` (index 3) shares the same head. Weight the duplicate high.
    let dup_view = 3;
    let dubious_head = problem.views().tuple(flagged[2]).head.clone();
    let dup_index = problem.views().views[dup_view]
        .position_of(&dubious_head)
        .expect("duplicate view shares heads");
    problem
        .set_weight(ViewTupleId::new(dup_view, dup_index), 10.0)
        .unwrap();

    println!("flags: 2 × weight 5 (confident), 1 × weight 0.2 (dubious)");
    println!("the dubious flag's twin answer has weight 10\n");

    // --- Standard version: every flag must go. ---
    let standard = dp_tree::solve(problem.compiled()).unwrap();
    assert!(standard.is_feasible(&problem));
    println!(
        "standard  : {} deletions, side-effect = {}",
        standard.len(),
        standard.side_effect(&problem)
    );

    // --- Balanced version: flags are priced, not mandated. ---
    let balanced = dp_tree::solve_balanced(problem.compiled()).unwrap();
    println!(
        "balanced  : {} deletions, balanced cost = {} (missed flags + damage)",
        balanced.len(),
        balanced.balanced_cost(&problem)
    );

    // The balanced optimum should skip the dubious flag (paying 0.2)
    // instead of destroying the weight-10 twin.
    assert!(balanced.balanced_cost(&problem) < standard.side_effect(&problem));
    let missed: Vec<_> = problem
        .deletions()
        .iter()
        .filter(|&&id| !balanced.eliminates(&problem, id))
        .collect();
    println!("\nflags left in place by the balanced repair: {missed:?}");
    assert_eq!(missed.len(), 1, "exactly the dubious flag survives");

    // Cross-check the DP against branch and bound on both objectives.
    let opt_std = exact::solve(problem.compiled(), ExactConfig::default());
    let opt_bal = exact::solve_balanced(problem.compiled(), ExactConfig::default());
    assert_eq!(standard.side_effect(&problem), opt_std.cost);
    assert_eq!(balanced.balanced_cost(&problem), opt_bal.cost);
    println!("\nboth DP answers match the exact branch-and-bound optima.");
}
