//! Data annotation via multiple views (§V of the paper).
//!
//! When an error is found in one view, the same underlying source error
//! usually surfaces in other views too. The paper's observation: merging
//! deletions specified on the results of **multiple** queries shrinks the
//! set of optimal source candidates — "the more queries and views, the
//! closer we approach the side-effect-free solution".
//!
//! This example reproduces that narrowing on Fig. 1: with Q4 alone the
//! instance has two optimal solutions; adding a second view (the journal
//! catalog Q5) disambiguates to the author-side tuple.
//!
//! Run with: `cargo run --example annotation`

use delprop::core::solvers::exact;
use delprop::prelude::*;
use delprop::setcover::exact::ExactConfig;
use delprop::workload::figures;

/// All optimal solutions (by enumerating candidate subsets — fine at this
/// scale) for a problem.
fn all_optima(problem: &Problem) -> Vec<Solution> {
    let candidates = problem.candidates();
    let opt = exact::solve(problem.compiled(), ExactConfig::default()).cost;
    let mut out = Vec::new();
    for mask in 0u32..(1 << candidates.len()) {
        let sol = Solution::from_tuples(
            candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &t)| t),
        );
        if sol.is_feasible(problem) && (sol.side_effect(problem) - opt).abs() < 1e-9 {
            // Keep only minimal solutions (no deletable subset).
            let minimal = sol.deleted.iter().all(|&t| {
                let mut smaller = sol.clone();
                smaller.deleted.remove(&t);
                !(smaller.is_feasible(problem) && (smaller.side_effect(problem) - opt).abs() < 1e-9)
            });
            if minimal {
                out.push(sol);
            }
        }
    }
    out
}

fn render(problem: &Problem, sols: &[Solution]) {
    for (i, s) in sols.iter().enumerate() {
        let tuples: Vec<String> = s
            .deleted
            .iter()
            .map(|&t| problem.db().tuple(t).unwrap().to_string())
            .collect();
        println!("  optimum #{}: delete {}", i + 1, tuples.join(", "));
    }
}

fn main() {
    let db = figures::fig1_db();

    // --- One view: Q4 only. John does no XML research, so both of his
    //     XML answers are reported as errors. Two optimal ways to
    //     annotate the source remain: the journal-side candidate
    //     T2(TODS, XML, 30) is as cheap as the author-side T1(John, TODS).
    let q4 = figures::fig1_q4(&db);
    let mut single = Problem::new(db.clone(), vec![q4.clone()]).unwrap();
    single
        .mark_deleted(0, &tup!["John", "TKDE", "XML"])
        .unwrap();
    single
        .mark_deleted(0, &tup!["John", "TODS", "XML"])
        .unwrap();
    let sols1 = all_optima(&single);
    println!("Q4 alone: {} optimal annotation target(s)", sols1.len());
    render(&single, &sols1);

    // --- Two views: the catalog view Q5(journal, topic) is also
    //     materialized, and the expert confirms (TODS, XML) is fine —
    //     i.e. it is NOT in ΔV, so damaging it now counts.
    let q5 = parse_query("Q5(y, z) :- T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut multi = Problem::new(db, vec![q4, q5]).unwrap();
    multi.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
    multi.mark_deleted(0, &tup!["John", "TODS", "XML"]).unwrap();
    let sols2 = all_optima(&multi);
    println!("\nQ4 + Q5: {} optimal annotation target(s)", sols2.len());
    render(&multi, &sols2);

    assert!(
        sols2.len() < sols1.len(),
        "extra views must narrow candidates"
    );
    println!(
        "\nAdding the catalog view eliminated the journal-side candidate \
         T2(TODS, XML, 30): the annotation now uniquely targets John's \
         two roster entries."
    );
}
