//! Query-oriented data cleaning (§V of the paper, QOCO-style).
//!
//! A cleaning system collects expert feedback on the answers of several
//! covering queries and must translate it into source deletions. The
//! paper's argument for the multi-query batch formulation: processing the
//! feedback one query at a time is order-dependent and can damage far
//! more good answers than the batch optimum. This example measures that
//! gap on generated scenarios.
//!
//! Run with: `cargo run --example data_cleaning`

use delprop::core::solvers::{exact, general};
use delprop::setcover::exact::ExactConfig;
use delprop::workload::cleaning::{self, CleaningParams};

fn main() {
    println!("seed | ΔV | batch OPT | batch approx | seq(QA,QJ,QT) | seq(QT,QJ,QA)");
    println!("-----+----+-----------+--------------+---------------+--------------");
    let mut seq_total = 0.0;
    let mut batch_total = 0.0;
    for seed in 0..10u64 {
        let scenario = cleaning::generate(CleaningParams::default(), seed);
        let p = &scenario.problem;

        // Batch: the multi-query optimum (exact on these sizes) and the
        // Claim 1 approximation.
        let batch = exact::solve(p.compiled(), ExactConfig::default());
        let approx = general::solve(p.compiled()).unwrap();

        // Sequential: per-query feedback processing in two different
        // orders — the order dependence the paper warns about.
        let fwd = cleaning::sequential_baseline(p, &[0, 1, 2]);
        let rev = cleaning::sequential_baseline(p, &[2, 1, 0]);

        let opt = batch.cost;
        println!(
            "{seed:4} | {:2} | {opt:9.1} | {:12.1} | {:13.1} | {:12.1}",
            p.norm_delta(),
            approx.side_effect(p),
            fwd.side_effect(p),
            rev.side_effect(p),
        );
        seq_total += fwd.side_effect(p).min(rev.side_effect(p));
        batch_total += opt;
    }
    println!(
        "\nbatch total = {batch_total}, best-sequential total = {seq_total}: \
         the batch formulation never loses, and wins whenever feedback is \
         incomplete enough to make local choices misleading."
    );
    assert!(batch_total <= seq_total + 1e-9);
}
