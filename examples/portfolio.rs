//! The portfolio runtime: budgets, panic isolation, verified fallbacks.
//!
//! Solves a forest workload through the guarantee-ordered portfolio,
//! then demonstrates the robustness features one by one: a tick budget
//! that degrades gracefully, an injected panic that is contained and
//! reported instead of tearing down the process, and the racing path
//! that runs every applicable member on its own thread.
//!
//! Run with: `cargo run --example portfolio`

use delprop::core::runtime::solver::{ExactSolver, GreedySolver};
use delprop::core::runtime::{metrics, trace};
use delprop::core::solvers::local_search::Objective;
use delprop::core::{RingBufferSink, TraceSink};
use delprop::prelude::*;
use delprop::workload::forest::{self, ForestParams};
use delprop::workload::random_db::{self, RandomDbParams};
use std::sync::Arc;

fn main() {
    let p = forest::generate(
        ForestParams {
            levels: 4,
            window: 2,
            chains: 10,
            delete_fraction: 0.3,
            weighted: true,
        },
        7,
    );
    println!(
        "forest workload: ‖V‖ = {}, ‖ΔV‖ = {}\n",
        p.norm_v(),
        p.norm_delta()
    );

    // ------------------------------------------------------------------
    // 1. The default entry point: guarantee-ordered verified fallback.
    //    Every candidate is checked with `is_feasible` plus ground-truth
    //    re-evaluation before it may be reported.
    // ------------------------------------------------------------------
    let outcome = solve_portfolio(&p).unwrap();
    println!("{outcome}\n");

    // ------------------------------------------------------------------
    // 2. Budgets: an exact solve on a dense multi-query workload whose
    //    full branch-and-bound search needs hundreds of thousands of
    //    nodes. The tick counter is threaded into every hot loop
    //    (branch-and-bound nodes, simplex pivots, local-search moves),
    //    so the exact solver returns its best-so-far incumbent — still
    //    verified — instead of hanging.
    // ------------------------------------------------------------------
    let dense = random_db::generate(
        RandomDbParams {
            num_relations: 5,
            num_queries: 4,
            atoms_per_query: 2,
            domain: 5,
            tuples_per_relation: 18,
            delete_fraction: 0.4,
            weighted: true,
        },
        1,
    );
    let budget = Budget::with_ticks(50_000);
    let chain = Portfolio::new(Objective::Standard)
        .with(ExactSolver::default())
        .with(GreedySolver);
    match chain.solve(&dense, &budget) {
        Ok(out) => println!(
            "budgeted exact→greedy on a dense instance: winner {} at cost {}\n\
             ({} of 50000 ticks used, exhausted = {})\n",
            out.winner,
            out.cost,
            budget.used(),
            budget.is_exhausted()
        ),
        Err(e) => println!("budgeted exact→greedy: {e}\n"),
    }

    // ------------------------------------------------------------------
    // 3. Fault injection: a member that panics is caught by the runtime,
    //    reported, and the chain falls through to a healthy fallback.
    // ------------------------------------------------------------------
    let chain = Portfolio::new(Objective::Standard)
        .with(FaultySolver::new(GreedySolver, FaultMode::Panic))
        .with(GreedySolver);
    // Silence the default panic hook while the contained panic fires so
    // the demo output stays readable; the runtime catches it either way.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = chain.solve(&p, &Budget::unlimited()).unwrap();
    std::panic::set_hook(hook);
    println!("with an injected panic:\n{out}");
    assert!(out.solution.is_feasible(&p));

    // ------------------------------------------------------------------
    // 4. Racing: every applicable member on its own thread, all drawing
    //    from one atomic budget pool. The first member to verify cancels
    //    everyone with a weaker-or-equal guarantee; cancelled members
    //    show up as `cancelled` in the report, and the winner is chosen
    //    exactly like sequential `solve_best` (min verified cost, chain
    //    order on ties).
    // ------------------------------------------------------------------
    let raced = Portfolio::standard()
        .solve_racing(&p, &Budget::unlimited())
        .unwrap();
    println!("racing the whole chain:\n{raced}");
    assert!(raced.solution.is_feasible(&p));

    // ------------------------------------------------------------------
    // 5. Tracing: attach a ring-buffer sink to the budget before sharing
    //    and every phase — compile, member spans, verification, racing
    //    cancellations — lands in the ring as structured events, which
    //    dump to JSONL for offline inspection.
    // ------------------------------------------------------------------
    let ring = Arc::new(RingBufferSink::with_capacity(1 << 14));
    let budget = Budget::unlimited().with_sink(Arc::clone(&ring) as Arc<dyn TraceSink>);
    let traced = Portfolio::standard().solve_racing(&p, &budget).unwrap();
    let events = ring.snapshot();
    println!(
        "traced racing run: winner {}, {} events captured ({} recorded, {} dropped)",
        traced.winner,
        events.len(),
        ring.recorded(),
        ring.dropped()
    );
    match trace::dump_jsonl("artifacts/TRACE_portfolio.jsonl", &events) {
        Ok(()) => println!("trace dumped to artifacts/TRACE_portfolio.jsonl"),
        Err(e) => println!("trace not written: {e}"),
    }
    println!(
        "\nprocess-wide metrics after all of the above:\n{}",
        metrics::render()
    );
}
