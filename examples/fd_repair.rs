//! Functional dependencies widen the key-preserving class.
//!
//! `Q3(x, z) :- T1(x, y), T2(y, z, w)` from the paper's Fig. 1 is *not*
//! key-preserving — the key variable `y` is projected away — so the plain
//! constructor rejects it. But when the data satisfies `author → journal`
//! and `topic → journal`, those FDs derive smaller candidate keys that
//! ARE covered by the head, witnesses become unique again, and the whole
//! solver stack applies. This is the "fd-…" mechanism the paper's
//! landscape tables (II–V) refer to.
//!
//! Run with: `cargo run --example fd_repair`

use delprop::core::solvers::exact;
use delprop::prelude::*;
use delprop::relation::{FunctionalDependency, RelationFds, SchemaFds};
use delprop::setcover::exact::ExactConfig;

fn main() {
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1])
            .unwrap()
            .with_attr_names(&["AuName", "Journal"]),
        RelationSchema::new("T2", 3, vec![0, 1])
            .unwrap()
            .with_attr_names(&["Journal", "Topic", "#Papers"]),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    // One journal per author, one journal per topic: the FDs hold.
    for (a, j) in [("Joe", "TKDE"), ("John", "TODS"), ("Tom", "VLDB")] {
        db.insert("T1", tup![a, j]).unwrap();
    }
    for (j, z, w) in [
        ("TKDE", "XML", 30),
        ("TODS", "CUBE", 20),
        ("VLDB", "ML", 10),
    ] {
        db.insert("T2", tup![j, z, w]).unwrap();
    }

    let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();

    // Without FDs: rejected.
    match Problem::new(db.clone(), vec![q3.clone()]) {
        Err(e) => println!("without FDs: {e}\n"),
        Ok(_) => unreachable!(),
    }

    // Declare author → journal and topic → (journal, #papers).
    let t1 = db.schema().relation_id("T1").unwrap();
    let t2 = db.schema().relation_id("T2").unwrap();
    let mut fds = SchemaFds::new();
    let mut f1 = RelationFds::new(2);
    f1.add(FunctionalDependency::new(vec![0], vec![1])).unwrap();
    fds.insert(t1, f1);
    let mut f2 = RelationFds::new(3);
    f2.add(FunctionalDependency::new(vec![1], vec![0, 2]))
        .unwrap();
    fds.insert(t2, f2);

    let mut problem = Problem::new_with_fds(db, vec![q3], &fds).unwrap();
    println!(
        "with FDs: accepted; Q3(D) has {} tuples, each with a unique witness set",
        problem.norm_v()
    );
    for (id, vt) in problem.views().iter() {
        println!("  {} ({} witnesses)", vt.head, problem.witnesses(id).len());
    }

    problem.mark_deleted(0, &tup!["Joe", "XML"]).unwrap();
    let out = exact::solve(problem.compiled(), ExactConfig::default());
    let sol = out.solution.unwrap();
    println!(
        "\ndeleting Q3(Joe, XML): ΔD = {:?}, side-effect = {}",
        sol.deleted
            .iter()
            .map(|&t| problem.db().tuple(t).unwrap().to_string())
            .collect::<Vec<_>>(),
        out.cost
    );
    assert_eq!(out.cost, 0.0, "Joe's roster row is private to that answer");

    // The FD guard: violate author → journal and the constructor refuses.
    let mut dirty = problem.db().clone();
    dirty.insert("T1", tup!["Joe", "ICDE"]).unwrap();
    let q3_again = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(dirty.schema())
        .unwrap();
    match Problem::new_with_fds(dirty, vec![q3_again], &fds) {
        Err(e) => println!("\nafter injecting a second Joe row: {e}"),
        Ok(_) => unreachable!("violated FDs must be rejected"),
    }
}
